package integration_test

import (
	"testing"

	"osnt/internal/flowstats"
	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// TestReadmeFlowSnippet mirrors the README's merged-capture flow
// analytics example so the documentation stays compile-verified and
// behaviour-verified.
func TestReadmeFlowSnippet(t *testing.T) {
	engine := sim.NewEngine()
	tp := topo.New().
		Tester("osnt", netfpga.Config{Ports: 2}).
		Link("osnt:0", "osnt:1").
		MustBuild(engine)

	m := tp.AttachMonitor("osnt:1", mon.Config{
		SnapLen:   64,
		HashBytes: packet.HeaderDigestBytes, // headers only: one digest per flow
		Steer:     mon.SteerHash,
		Queues:    make([]mon.QueueConfig, 4),
	})

	flows := flowstats.NewFlowTable(1024) // preallocated, never rehashes
	heavy := flowstats.NewSpaceSaving(8)  // top-k summary with error bounds
	sketch := flowstats.NewCountMin(4, 1<<12)
	merge := mon.NewMerge(m, func(rec mon.Record) { // records arrive in global order
		s := flowstats.Sample{Digest: rec.Hash, RxTS: rec.TS, Wire: rec.WireSize, Trace: rec.Trace}
		if tx, ok := gen.ExtractTimestamp(rec.Data, gen.DefaultTimestampOffset); ok {
			s.TxTS, s.HasTx = tx, true
		}
		flows.Observe(s)
		heavy.Add(rec.Hash, 1)
		sketch.Add(rec.Hash, 1)
	})

	// ... run traffic ...
	g, err := gen.New(tp.Port("osnt:0"), gen.Config{
		Source:         &gen.UDPFlowSource{Spec: spec, NumFlows: 16, FrameSize: 512},
		Spacing:        gen.CBRForLoad(512, wire.Rate10G, 1.0),
		EmbedTimestamp: true,
		Count:          2000,
		Pool:           wire.DefaultPool,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	engine.Run()
	merge.Flush() // release the tail the watermark held back

	if got, want := merge.Emitted(), m.Delivered().Packets; got != want {
		t.Fatalf("merge emitted %d of %d delivered records", got, want)
	}
	if merge.OrderViolations() != 0 {
		t.Fatalf("merge recorded %d order violations", merge.OrderViolations())
	}
	if flows.Len() != 16 {
		t.Fatalf("flow table tracks %d flows, want 16", flows.Len())
	}
	top := flows.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) returned %d flows", len(top))
	}
	for _, f := range top {
		if f.Packets == 0 || f.LatencyCount() == 0 {
			t.Fatalf("top flow %016x has no packets or latency samples", f.Digest)
		}
		if f.Reorders != 0 || f.Holes != 0 {
			t.Fatalf("lossless single-hop rig inferred reorders=%d holes=%d", f.Reorders, f.Holes)
		}
		if est := sketch.Estimate(f.Digest); est < f.Packets {
			t.Fatalf("count-min undercounts flow %016x: %d < %d", f.Digest, est, f.Packets)
		}
	}
	// 16 equal-rate flows churn an 8-slot summary: every slot is held,
	// and each candidate's count never undercounts its true volume.
	if heavy.Len() != 8 {
		t.Fatalf("space-saving monitors %d flows, want 8", heavy.Len())
	}
	for _, h := range heavy.Top(8) {
		if f := flows.Lookup(h.Digest); f != nil && h.Count < f.Packets {
			t.Fatalf("space-saving undercounts flow %016x: %d < %d", h.Digest, h.Count, f.Packets)
		}
	}
}
