package integration_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"osnt/internal/filter"
	"osnt/internal/openflow"
	"osnt/internal/packet"
	"osnt/internal/pcap"
	"osnt/internal/sim"
	"osnt/internal/snmp"
)

// Every wire-facing decoder in the repository must tolerate arbitrary
// bytes: captures come off a (simulated) network, OpenFlow and SNMP
// messages from untrusted peers. "Tolerate" means return an error or a
// best-effort parse — never panic, never read out of bounds.

func mutated(seed uint64, n int) []byte {
	r := sim.NewRand(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Uint64())
	}
	return b
}

func TestPropertyPacketDecodersNeverPanic(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		data := mutated(seed, int(n%2048))
		var eth packet.Ethernet
		if err := eth.DecodeFromBytes(data); err == nil {
			var ip4 packet.IPv4
			var ip6 packet.IPv6
			switch eth.EtherType {
			case packet.EtherTypeIPv4:
				if ip4.DecodeFromBytes(eth.Payload()) == nil {
					var udp packet.UDP
					var tcp packet.TCP
					var icmp packet.ICMPv4
					_ = udp.DecodeFromBytes(ip4.Payload())
					_ = tcp.DecodeFromBytes(ip4.Payload())
					_ = icmp.DecodeFromBytes(ip4.Payload())
				}
			case packet.EtherTypeIPv6:
				_ = ip6.DecodeFromBytes(eth.Payload())
			}
		}
		var vlan packet.VLAN
		_ = vlan.DecodeFromBytes(data)
		var arp packet.ARP
		_ = arp.DecodeFromBytes(data)
		_, _ = packet.ExtractFlow(data)
		_, _ = openflow.KeyFromPacket(data, 1)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOpenFlowDecodeNeverPanics(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		data := mutated(seed, int(n%512))
		_, _, _ = openflow.Decode(data)
		// A structurally plausible header with garbage body.
		if len(data) >= openflow.HeaderLen {
			data[0] = openflow.Version
			data[1] = byte(seed % 22)
			data[2] = byte(len(data) >> 8)
			data[3] = byte(len(data))
			_, _, _ = openflow.Decode(data)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySNMPDecodeNeverPanics(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		data := mutated(seed, int(n%512))
		_, _ = snmp.Decode(data)
		// Agent must also survive garbage requests.
		agent := snmp.NewAgent("")
		agent.Register(snmp.OIDSysUpTime, func() snmp.Value { return snmp.TimeTicks(1) })
		_ = agent.Handle(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPcapReaderNeverPanics(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		data := mutated(seed, int(n%1024))
		_, _ = pcap.ReadAll(bytes.NewReader(data))
		// Valid global header, garbage records.
		var buf bytes.Buffer
		w, err := pcap.NewWriter(&buf, 0, true)
		if err != nil {
			return false
		}
		_ = w.Write(pcap.Record{Data: []byte{1}, OrigLen: 1})
		full := append(buf.Bytes(), data...)
		_, _ = pcap.ReadAll(bytes.NewReader(full))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFilterNeverPanics(t *testing.T) {
	tbl := filter.NewTable(filter.Capture)
	_ = tbl.Append(&filter.Rule{
		Action: filter.Drop, Proto: packet.ProtoUDP,
		SrcIP: packet.IP4{10, 0, 0, 0}, SrcPrefixLen: 8,
		DstPortMin: 1, DstPortMax: 1024,
		RawValue: []byte{0x02}, RawMask: []byte{0xff},
	})
	f := func(seed uint64, n uint16) bool {
		data := mutated(seed, int(n%256))
		_, _, _ = tbl.Match(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMutatedValidFrames flips bytes in otherwise valid frames —
// the nastier corpus, since length fields and version nibbles stay
// plausible.
func TestPropertyMutatedValidFrames(t *testing.T) {
	base := packet.UDPSpec{
		SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: packet.IP4{10, 0, 0, 1}, DstIP: packet.IP4{10, 0, 0, 2},
		SrcPort: 5000, DstPort: 7000, FrameSize: 256,
	}.Build()
	f := func(seed uint64, flips uint8, cut uint16) bool {
		r := sim.NewRand(seed)
		data := make([]byte, len(base))
		copy(data, base)
		for i := 0; i < int(flips%16)+1; i++ {
			data[r.Intn(len(data))] ^= byte(r.Uint64())
		}
		if int(cut) < len(data) {
			data = data[:cut]
		}
		var eth packet.Ethernet
		if eth.DecodeFromBytes(data) == nil {
			var ip packet.IPv4
			if ip.DecodeFromBytes(eth.Payload()) == nil {
				var udp packet.UDP
				_ = udp.DecodeFromBytes(ip.Payload())
				_ = ip.VerifyChecksum(eth.Payload())
			}
		}
		_, _ = packet.ExtractFlow(data)
		_, _ = openflow.KeyFromPacket(data, 3)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
