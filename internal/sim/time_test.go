package sim

import "testing"

// TestAfter pins the epoch-relative instant constructor that replaced raw
// Time arithmetic at call sites (pcap decoding, experiment checkpoints,
// CLI deadlines).
func TestAfter(t *testing.T) {
	if got := After(0); got != Epoch {
		t.Fatalf("After(0) = %v, want epoch", got)
	}
	if got := After(3 * Second); got.Picoseconds() != 3*int64(Second) {
		t.Fatalf("After(3s) = %d ps, want %d", got.Picoseconds(), 3*int64(Second))
	}
	if got := After(1500 * Nanosecond); got != Epoch.Add(1500*Nanosecond) {
		t.Fatalf("After disagrees with Epoch.Add: %v", got)
	}
}

// TestTruncate pins the grid-alignment helper that replaced the
// t - t%sim.Time(d) idiom in the PPS servo and the timestamp quantizer.
func TestTruncate(t *testing.T) {
	cases := []struct {
		t    Time
		d    Duration
		want Time
	}{
		{0, Second, 0},
		{After(Second), Second, After(Second)},
		{After(Second + 1), Second, After(Second)},
		{After(2*Second - 1), Second, After(Second)},
		{After(7 * Nanosecond), Duration(6250), After(6250 * Picosecond)}, // 6.25 ns stamp grid
		{After(42 * Microsecond), 0, After(42 * Microsecond)},             // non-positive d: identity
		{After(42 * Microsecond), -Second, After(42 * Microsecond)},
	}
	for _, c := range cases {
		if got := c.t.Truncate(c.d); got != c.want {
			t.Errorf("Truncate(%d, %d) = %d, want %d", c.t, c.d, got, c.want)
		}
	}
}

// TestTruncateNextBoundary pins the PPS-servo idiom: the next whole-second
// edge strictly after now.
func TestTruncateNextBoundary(t *testing.T) {
	now := After(3*Second + 250*Millisecond)
	next := now.Truncate(Second).Add(Second)
	if want := After(4 * Second); next != want {
		t.Fatalf("next PPS edge = %v, want %v", next, want)
	}
	// Exactly on an edge the next edge is a full second later.
	now = After(5 * Second)
	next = now.Truncate(Second).Add(Second)
	if want := After(6 * Second); next != want {
		t.Fatalf("next PPS edge from an edge = %v, want %v", next, want)
	}
}
