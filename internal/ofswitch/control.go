package ofswitch

import (
	"osnt/internal/openflow"
	"osnt/internal/sim"
	"osnt/internal/wire"
)

// Controller is the controller-side handle of a simulated OpenFlow
// control channel. Messages cross the channel as encoded OpenFlow 1.0
// bytes (the real codec runs on every message) with a configurable
// one-way latency, and are processed by the switch's serial management
// CPU — the pieces whose interplay OFLOPS-turbo measures.
type Controller struct {
	sw *Switch

	// OnMessage receives every switch-to-controller message
	// (PACKET_IN, FLOW_REMOVED, replies ...).
	OnMessage func(m openflow.Message, xid uint32)

	sent     uint64
	received uint64
}

// Connect attaches a controller to the switch and performs the version
// handshake immediately (both sides speak 1.0).
func Connect(sw *Switch) *Controller {
	c := &Controller{sw: sw}
	sw.ctl = c
	return c
}

// Send transmits a message to the switch. Encoding happens now; the
// switch receives and processes it after the channel latency plus
// whatever its CPU queue imposes.
func (c *Controller) Send(m openflow.Message, xid uint32) {
	raw := openflow.Encode(m, xid)
	c.sent++
	c.sw.Engine.ScheduleAfter(c.sw.cfg.CtrlLatency, func() {
		c.sw.handleControl(raw)
	})
}

// fromSwitch carries a switch-originated message to the controller.
func (c *Controller) fromSwitch(m openflow.Message, xid uint32) {
	raw := openflow.Encode(m, xid)
	c.sw.Engine.ScheduleAfter(c.sw.cfg.CtrlLatency, func() {
		c.received++
		if c.OnMessage == nil {
			return
		}
		msg, gotXid, err := openflow.Decode(raw)
		if err != nil {
			return
		}
		c.OnMessage(msg, gotXid)
	})
}

// Stats returns messages sent to and received from the switch.
func (c *Controller) Stats() (sent, received uint64) { return c.sent, c.received }

// handleControl runs on the switch when a controller message arrives at
// the management interface. The message waits for the serial CPU, whose
// per-type costs model real firmware.
func (s *Switch) handleControl(raw []byte) {
	m, xid, err := openflow.Decode(raw)
	if err != nil {
		return // malformed: real switches drop and log
	}
	switch msg := m.(type) {
	case *openflow.Hello:
		s.cpuRun(s.cfg.EchoCost, func() {
			s.ctl.fromSwitch(&openflow.Hello{}, xid)
		})

	case *openflow.EchoRequest:
		s.cpuRun(s.cfg.EchoCost, func() {
			s.ctl.fromSwitch(&openflow.EchoReply{Data: msg.Data}, xid)
		})

	case *openflow.FeaturesRequest:
		s.cpuRun(s.cfg.EchoCost, func() {
			reply := &openflow.FeaturesReply{
				DatapathID: s.cfg.DatapathID,
				NBuffers:   0, NTables: 1,
			}
			for _, p := range s.ports {
				reply.Ports = append(reply.Ports, openflow.PhyPort{
					No:   p.OFPort(),
					Name: portName(p.index),
				})
			}
			s.ctl.fromSwitch(reply, xid)
		})

	case *openflow.SetConfig:
		s.cpuRun(s.cfg.EchoCost, func() {
			if msg.MissSendLen > 0 {
				s.cfg.MissSendLen = int(msg.MissSendLen)
			}
		})

	case *openflow.BarrierRequest:
		// The barrier completes when the CPU reaches it — i.e. after all
		// previously queued control work finished on the CPU. Note the
		// hardware-install lag is NOT covered by the barrier, exactly the
		// gap the consistency experiment exposes.
		s.cpuRun(s.cfg.BarrierCost, func() {
			s.ctl.fromSwitch(&openflow.BarrierReply{}, xid)
		})

	case *openflow.FlowMod:
		cost := s.cfg.FlowModCost +
			sim.Duration(s.table.Len())*s.cfg.FlowModPerEntry
		s.cpuRun(cost, func() {
			s.applyFlowModLater(msg)
		})

	case *openflow.PacketOut:
		s.cpuRun(s.cfg.PacketInCost, func() {
			s.injectPacketOut(msg)
		})

	case *openflow.StatsRequest:
		// Stats walk the table / ports on the CPU.
		cost := s.cfg.BarrierCost +
			sim.Duration(s.table.Len())*s.cfg.FlowModPerEntry
		s.cpuRun(cost, func() {
			s.ctl.fromSwitch(s.buildStatsReply(msg), xid)
		})
	}
}

// applyFlowModLater finishes control-plane processing of a FLOW_MOD and
// schedules the dataplane table write HWInstallDelay later.
func (s *Switch) applyFlowModLater(fm *openflow.FlowMod) {
	apply := func() { s.applyFlowMod(fm) }
	if s.cfg.HWInstallDelay > 0 {
		s.Engine.ScheduleAfter(s.cfg.HWInstallDelay, apply)
	} else {
		apply()
	}
}

func (s *Switch) applyFlowMod(fm *openflow.FlowMod) {
	now := s.Engine.Now()
	switch fm.Command {
	case openflow.FCAdd:
		s.table.Add(&Entry{
			Match: fm.Match, Priority: fm.Priority, Cookie: fm.Cookie,
			Actions: fm.Actions, IdleTimeout: fm.IdleTimeout,
			HardTimeout: fm.HardTimeout, Flags: fm.Flags,
			InstalledAt: now, LastUsed: now,
		})
		if fm.IdleTimeout > 0 || fm.HardTimeout > 0 {
			s.ensureSweep()
		}
	case openflow.FCModify, openflow.FCModifyStrict:
		strict := fm.Command == openflow.FCModifyStrict
		if n := s.table.Modify(fm.Match, fm.Priority, fm.Actions, strict); n == 0 {
			// Per OF 1.0: a modify with no matching entry behaves as add.
			s.table.Add(&Entry{
				Match: fm.Match, Priority: fm.Priority, Cookie: fm.Cookie,
				Actions: fm.Actions, IdleTimeout: fm.IdleTimeout,
				HardTimeout: fm.HardTimeout, Flags: fm.Flags,
				InstalledAt: now, LastUsed: now,
			})
		}
	case openflow.FCDelete, openflow.FCDeleteStrict:
		strict := fm.Command == openflow.FCDeleteStrict
		removed := s.table.Delete(fm.Match, fm.Priority, fm.OutPort, strict)
		for _, e := range removed {
			if e.Flags&openflow.FlagSendFlowRem != 0 && s.ctl != nil {
				dur := now.Sub(e.InstalledAt)
				s.ctl.fromSwitch(&openflow.FlowRemoved{
					Match: e.Match, Cookie: e.Cookie, Priority: e.Priority,
					Reason:      openflow.RemovedDelete,
					DurationSec: uint32(dur / sim.Second),
					PacketCount: e.Packets, ByteCount: e.Bytes,
				}, 0)
			}
		}
	}
}

func (s *Switch) injectPacketOut(po *openflow.PacketOut) {
	if len(po.Data) == 0 {
		return
	}
	data := make([]byte, len(po.Data))
	copy(data, po.Data)
	frame := wire.NewFrame(data)
	var in *Port
	if po.InPort >= 1 && int(po.InPort) <= len(s.ports) {
		in = s.ports[po.InPort-1]
	} else {
		in = s.ports[0]
	}
	s.applyActions(po.Actions, frame, in, s.Engine.Now())
}

func (s *Switch) buildStatsReply(req *openflow.StatsRequest) *openflow.StatsReply {
	now := s.Engine.Now()
	reply := &openflow.StatsReply{StatsType: req.StatsType}
	switch req.StatsType {
	case openflow.StatsFlow:
		for _, e := range s.table.Entries() {
			if req.Flow != nil && !req.Flow.Match.Subsumes(&e.Match) {
				continue
			}
			dur := now.Sub(e.InstalledAt)
			reply.Flows = append(reply.Flows, openflow.FlowStats{
				Match: e.Match, Priority: e.Priority, Cookie: e.Cookie,
				DurationSec:  uint32(dur / sim.Second),
				DurationNsec: uint32(dur % sim.Second / sim.Nanosecond),
				IdleTimeout:  e.IdleTimeout, HardTimeout: e.HardTimeout,
				PacketCount: e.Packets, ByteCount: e.Bytes,
				Actions: e.Actions,
			})
		}
	case openflow.StatsAggregate:
		agg := &openflow.AggregateStats{}
		for _, e := range s.table.Entries() {
			if req.Flow != nil && !req.Flow.Match.Subsumes(&e.Match) {
				continue
			}
			agg.PacketCount += e.Packets
			agg.ByteCount += e.Bytes
			agg.FlowCount++
		}
		reply.Aggregate = agg
	case openflow.StatsPort:
		for _, p := range s.ports {
			if req.Port != nil && req.Port.PortNo != openflow.PortNone &&
				req.Port.PortNo != p.OFPort() {
				continue
			}
			reply.Ports = append(reply.Ports, openflow.PortStats{
				PortNo:    p.OFPort(),
				RxPackets: p.rx.Packets, TxPackets: p.tx.Packets,
				RxBytes: p.rx.Bytes, TxBytes: p.tx.Bytes,
				TxDropped: p.drops,
			})
		}
	}
	return reply
}

func portName(i int) string {
	return "nf" + string(rune('0'+i))
}
