package integration_test

import (
	"testing"

	"osnt/internal/fabric"
	"osnt/internal/gen"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/wire"
)

// TestReadmeFabricSnippet mirrors the README's fabric-synthesis example
// so the documentation stays compile-verified and behaviour-verified: a
// k=4 fat-tree under a half-load permutation matrix is lossless, floods
// nothing, and conserves exactly.
func TestReadmeFabricSnippet(t *testing.T) {
	engine := sim.NewEngine()
	f := fabric.MustBuild(engine, fabric.Spec{K: 4}) // 20 switches, 16 hosts
	srcs := f.Sources(f.Permutation(), 512)          // all-to-all, 512 B frames

	var gens []*gen.Generator
	for i, src := range srcs {
		g, err := gen.New(f.HostPort(i), gen.Config{
			Source:  src,
			Spacing: gen.CBRForLoad(512, wire.Rate10G, 0.5), // half line rate
			Pool:    wire.DefaultPool,                       // zero-alloc replay
		})
		if err != nil {
			panic(err)
		}
		g.Start(0)
		gens = append(gens, g)
	}
	engine.RunUntil(sim.Time(sim.Millisecond))
	var offered uint64
	for _, g := range gens {
		g.Stop()
		offered += g.Sent().Packets + g.Dropped()
	}
	engine.Run() // drain the fabric

	lm := stats.NewLossMap(offered, f.Delivered(), f.Drops())
	tiers := f.TierDrops() // indexed by fabric.TierEdge / TierAgg / TierCore

	// The README's claims, verified.
	if f.Spec.NumSwitches() != 20 || len(f.Hosts) != 16 {
		t.Fatalf("k=4 expanded to %d switches / %d hosts", f.Spec.NumSwitches(), len(f.Hosts))
	}
	if offered == 0 {
		t.Fatal("nothing offered")
	}
	if !lm.Conserved() {
		t.Fatalf("loss not conserved: sent %d delivered %d attributed %d",
			lm.Sent, lm.Delivered, lm.Attributed())
	}
	if lm.Delivered != offered || tiers[fabric.TierEdge] != 0 {
		t.Fatalf("half-load permutation lost frames: offered %d delivered %d edge drops %d",
			offered, lm.Delivered, tiers[fabric.TierEdge])
	}
	for _, name := range append(append(append([]string{}, f.Edges...), f.Aggs...), f.Cores...) {
		if n := f.Topology.DUT(name).Floods(); n != 0 {
			t.Fatalf("%s flooded %d frames despite pre-learned FDBs", name, n)
		}
	}
}
