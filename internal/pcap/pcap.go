// Package pcap reads and writes classic libpcap capture files. Both the
// microsecond (0xa1b2c3d4) and nanosecond (0xa1b23c4d) magics are
// supported in either byte order, which is what the OSNT host tools need:
// replaying arbitrary third-party captures through the generator and
// persisting monitor captures with nanosecond timestamps.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"osnt/internal/sim"
)

// File magics.
const (
	MagicMicro = 0xa1b2c3d4
	MagicNano  = 0xa1b23c4d
)

// LinkTypeEthernet is the only link type the OSNT data path carries.
const LinkTypeEthernet = 1

// Record is one captured packet.
type Record struct {
	// TS is the capture timestamp as virtual time from the epoch.
	TS sim.Time
	// Data holds the captured bytes (possibly snapped short of the
	// original).
	Data []byte
	// OrigLen is the original packet length on the wire (excluding FCS,
	// per libpcap convention).
	OrigLen int
}

// Errors returned by the reader.
var (
	ErrBadMagic  = errors.New("pcap: unrecognised magic number")
	errTruncated = errors.New("pcap: truncated record")
)

// Reader decodes a pcap stream.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	nano     bool
	snapLen  uint32
	linkType uint32
	hdr      [16]byte
}

// NewReader parses the global header and returns a reader positioned at
// the first record.
func NewReader(r io.Reader) (*Reader, error) {
	var gh [24]byte
	if _, err := io.ReadFull(r, gh[:]); err != nil {
		return nil, fmt.Errorf("pcap: global header: %w", err)
	}
	p := &Reader{r: r}
	magicLE := binary.LittleEndian.Uint32(gh[0:4])
	magicBE := binary.BigEndian.Uint32(gh[0:4])
	switch {
	case magicLE == MagicMicro:
		p.order = binary.LittleEndian
	case magicLE == MagicNano:
		p.order, p.nano = binary.LittleEndian, true
	case magicBE == MagicMicro:
		p.order = binary.BigEndian
	case magicBE == MagicNano:
		p.order, p.nano = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	p.snapLen = p.order.Uint32(gh[16:20])
	p.linkType = p.order.Uint32(gh[20:24])
	return p, nil
}

// Nano reports whether record timestamps carry nanosecond resolution.
func (p *Reader) Nano() bool { return p.nano }

// SnapLen returns the file's snapshot length.
func (p *Reader) SnapLen() uint32 { return p.snapLen }

// LinkType returns the file's link type (1 for Ethernet).
func (p *Reader) LinkType() uint32 { return p.linkType }

// Next returns the next record, or io.EOF at end of stream. The returned
// Data is freshly allocated and owned by the caller.
func (p *Reader) Next() (Record, error) {
	if _, err := io.ReadFull(p.r, p.hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, errTruncated
		}
		return Record{}, err
	}
	sec := p.order.Uint32(p.hdr[0:4])
	frac := p.order.Uint32(p.hdr[4:8])
	capLen := p.order.Uint32(p.hdr[8:12])
	origLen := p.order.Uint32(p.hdr[12:16])
	if capLen > 256*1024 {
		return Record{}, fmt.Errorf("pcap: implausible capture length %d", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(p.r, data); err != nil {
		return Record{}, errTruncated
	}
	var ts sim.Time
	if p.nano {
		ts = sim.After(sim.Duration(sec)*sim.Second + sim.Duration(frac)*sim.Nanosecond)
	} else {
		ts = sim.After(sim.Duration(sec)*sim.Second + sim.Duration(frac)*sim.Microsecond)
	}
	return Record{TS: ts, Data: data, OrigLen: int(origLen)}, nil
}

// ReadAll decodes every record in the stream.
func ReadAll(r io.Reader) ([]Record, error) {
	p, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var recs []Record
	for {
		rec, err := p.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// Writer encodes a pcap stream.
type Writer struct {
	w       io.Writer
	nano    bool
	snapLen uint32
	hdr     [16]byte
}

// NewWriter writes a global header for an Ethernet capture and returns the
// writer. nano selects nanosecond timestamp resolution — the natural
// choice for OSNT captures, whose hardware resolution is 6.25 ns.
func NewWriter(w io.Writer, snapLen uint32, nano bool) (*Writer, error) {
	if snapLen == 0 {
		snapLen = 262144
	}
	var gh [24]byte
	magic := uint32(MagicMicro)
	if nano {
		magic = MagicNano
	}
	le := binary.LittleEndian
	le.PutUint32(gh[0:4], magic)
	le.PutUint16(gh[4:6], 2) // version 2.4
	le.PutUint16(gh[6:8], 4)
	le.PutUint32(gh[16:20], snapLen)
	le.PutUint32(gh[20:24], LinkTypeEthernet)
	if _, err := w.Write(gh[:]); err != nil {
		return nil, fmt.Errorf("pcap: global header: %w", err)
	}
	return &Writer{w: w, nano: nano, snapLen: snapLen}, nil
}

// Write appends one record. Data longer than the snap length is truncated
// on write, preserving OrigLen.
func (wr *Writer) Write(rec Record) error {
	data := rec.Data
	if uint32(len(data)) > wr.snapLen {
		data = data[:wr.snapLen]
	}
	ps := rec.TS.Picoseconds()
	sec := uint32(ps / 1_000_000_000_000)
	rem := ps % 1_000_000_000_000
	var frac uint32
	if wr.nano {
		frac = uint32(rem / 1000)
	} else {
		frac = uint32(rem / 1_000_000)
	}
	le := binary.LittleEndian
	le.PutUint32(wr.hdr[0:4], sec)
	le.PutUint32(wr.hdr[4:8], frac)
	le.PutUint32(wr.hdr[8:12], uint32(len(data)))
	le.PutUint32(wr.hdr[12:16], uint32(rec.OrigLen))
	if _, err := wr.w.Write(wr.hdr[:]); err != nil {
		return fmt.Errorf("pcap: record header: %w", err)
	}
	if _, err := wr.w.Write(data); err != nil {
		return fmt.Errorf("pcap: record data: %w", err)
	}
	return nil
}
