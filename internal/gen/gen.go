// Package gen implements the OSNT traffic generation subsystem: PCAP
// replay with a tuneable per-packet inter-departure time, synthetic
// constant-rate/Poisson/bursty/IMIX workloads, finely controlled rates up
// to line rate per port, and per-packet transmit-timestamp embedding at a
// preconfigured packet offset (the mechanism the paper places "just
// before the transmit 10GbE MAC").
package gen

import (
	"bytes"
	"fmt"
	"math"

	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/pcap"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/timing"
	"osnt/internal/wire"
)

// Spacing produces successive inter-departure times. Implementations are
// the OSNT rate-control disciplines.
type Spacing interface {
	Next(r *sim.Rand) sim.Duration
}

// CBR emits packets with a constant inter-departure time.
type CBR struct{ Interval sim.Duration }

// Next implements Spacing.
func (c CBR) Next(*sim.Rand) sim.Duration { return c.Interval }

// CBRForLoad returns constant spacing that offers the given fraction of
// line rate for FCS-inclusive frames of size frameSize. load 1.0 is
// exactly line rate; load > 1.0 overruns it (the MAC will clip).
func CBRForLoad(frameSize int, rate wire.Rate, load float64) CBR {
	slot := wire.SerializationTime(frameSize, rate)
	if load <= 0 {
		panic("gen: non-positive load")
	}
	return CBR{Interval: sim.Duration(float64(slot) / load)}
}

// CBRForPPS returns constant spacing at the given packets per second.
func CBRForPPS(pps float64) CBR {
	if pps <= 0 {
		panic("gen: non-positive pps")
	}
	return CBR{Interval: sim.Duration(1e12 / pps)}
}

// Poisson spaces packets with exponentially distributed gaps of the given
// mean, the classic open-loop arrival model.
type Poisson struct{ Mean sim.Duration }

// Next implements Spacing.
func (p Poisson) Next(r *sim.Rand) sim.Duration {
	return sim.Duration(float64(p.Mean) * r.ExpFloat64())
}

// Burst alternates On periods of back-to-back CBR traffic with silent Off
// periods, modelling on/off applications.
type Burst struct {
	Interval sim.Duration // spacing inside a burst
	On, Off  sim.Duration

	elapsed sim.Duration
}

// Next implements Spacing.
func (b *Burst) Next(*sim.Rand) sim.Duration {
	b.elapsed += b.Interval
	if b.elapsed >= b.On {
		b.elapsed = 0
		return b.Interval + b.Off
	}
	return b.Interval
}

// Source produces the frames to transmit. Next returns nil when the
// stream is exhausted.
type Source interface {
	Next() *wire.Frame
}

// PooledSource is a Source that can write the next frame into a
// caller-provided (typically pool-recycled) frame instead of allocating a
// fresh one. NextInto reports false when the stream is exhausted, leaving
// f untouched. When a Generator has a frame Pool configured and its
// Source implements PooledSource, the per-packet emit path allocates
// nothing.
type PooledSource interface {
	Source
	NextInto(f *wire.Frame) bool
}

// SliceSource replays a fixed list of frames (optionally cyclically).
type SliceSource struct {
	Frames []*wire.Frame
	Loop   bool
	pos    int
}

// Next implements Source. Frames are cloned so in-flight mutation
// (timestamp embedding) cannot corrupt the template.
func (s *SliceSource) Next() *wire.Frame {
	t := s.advance()
	if t == nil {
		return nil
	}
	return t.Clone()
}

// NextInto implements PooledSource.
func (s *SliceSource) NextInto(f *wire.Frame) bool {
	t := s.advance()
	if t == nil {
		return false
	}
	f.CopyFrom(t)
	return true
}

func (s *SliceSource) advance() *wire.Frame {
	if s.pos >= len(s.Frames) {
		if !s.Loop || len(s.Frames) == 0 {
			return nil
		}
		s.pos = 0
	}
	t := s.Frames[s.pos]
	s.pos++
	return t
}

// UDPFlowSource synthesises UDP-in-IPv4 frames cycling across NumFlows
// distinct flows (varying source port), the generator workload used
// throughout the experiments.
type UDPFlowSource struct {
	Spec      packet.UDPSpec
	NumFlows  int
	FrameSize int // FCS-inclusive; 0 keeps Spec.FrameSize
	// Sizes, if non-nil, cycles frame sizes (e.g. IMIX) instead of
	// FrameSize.
	Sizes []int

	built []*wire.Frame
	pos   int
}

// IMIXSizes is the classic 7:4:1 Internet mix of 64, 570 and 1518 byte
// frames.
var IMIXSizes = []int{64, 64, 64, 64, 64, 64, 64, 570, 570, 570, 570, 1518}

// Next implements Source.
func (u *UDPFlowSource) Next() *wire.Frame {
	return u.advance().Clone()
}

// NextInto implements PooledSource. The synthetic stream never ends, so
// it always reports true.
func (u *UDPFlowSource) NextInto(f *wire.Frame) bool {
	f.CopyFrom(u.advance())
	return true
}

func (u *UDPFlowSource) advance() *wire.Frame {
	if u.built == nil {
		n := u.NumFlows
		if n <= 0 {
			n = 1
		}
		sizes := u.Sizes
		if sizes == nil {
			fs := u.FrameSize
			if fs == 0 {
				fs = u.Spec.FrameSize
			}
			if fs == 0 {
				fs = 64
			}
			sizes = []int{fs}
		}
		// Build one template per (flow, size) pair.
		for i := 0; i < n; i++ {
			for _, sz := range sizes {
				spec := u.Spec
				spec.SrcPort = u.Spec.SrcPort + uint16(i)
				spec.FrameSize = sz
				u.built = append(u.built, wire.NewFrame(spec.Build()))
			}
		}
	}
	t := u.built[u.pos%len(u.built)]
	u.pos++
	return t
}

// PCAPSource replays records from a capture. ScaleGap rescales the
// recorded inter-departure gaps (1.0 = as captured); when a Spacing
// override is set on the Generator, recorded gaps are ignored entirely.
type PCAPSource struct {
	Records []pcap.Record
	Loop    bool
	pos     int
}

// Next implements Source.
func (p *PCAPSource) Next() *wire.Frame {
	if p.pos >= len(p.Records) {
		if !p.Loop || len(p.Records) == 0 {
			return nil
		}
		p.pos = 0
	}
	rec := p.Records[p.pos]
	p.pos++
	data := make([]byte, len(rec.Data))
	copy(data, rec.Data)
	f := &wire.Frame{Data: data, Size: rec.OrigLen + wire.FCSLen}
	if f.Size < len(data)+wire.FCSLen {
		f.Size = len(data) + wire.FCSLen
	}
	return f
}

// RecordedSpacing replays the inter-arrival gaps of a capture, scaled by
// Scale (0 or 1 = as recorded). This is "PCAP replay with a tuneable
// per-packet inter-departure time".
type RecordedSpacing struct {
	Records []pcap.Record
	Scale   float64
	Loop    bool
	pos     int
}

// Next implements Spacing.
func (r *RecordedSpacing) Next(*sim.Rand) sim.Duration {
	scale := r.Scale
	if scale == 0 {
		scale = 1
	}
	if len(r.Records) < 2 {
		return 0
	}
	i := r.pos
	r.pos++
	if i+1 >= len(r.Records) {
		if r.Loop {
			r.pos = 0
		}
		i = len(r.Records) - 2
	}
	gap := r.Records[i+1].TS.Sub(r.Records[i].TS)
	if gap < 0 {
		gap = 0
	}
	return sim.Duration(float64(gap) * scale)
}

// TimestampLen is the size of the embedded transmit timestamp.
const TimestampLen = 8

// DefaultTimestampOffset places the timestamp at the start of a UDP
// payload (Ethernet 14 + IPv4 20 + UDP 8), OSNT's usual configuration.
const DefaultTimestampOffset = 42

// EmbedTimestamp writes ts into data at the given offset, big-endian
// 32.32 fixed point — the wire format the OSNT extraction logic expects.
func EmbedTimestamp(data []byte, offset int, ts timing.Timestamp) bool {
	if offset < 0 || offset+TimestampLen > len(data) {
		return false
	}
	v := uint64(ts)
	for i := 0; i < 8; i++ {
		data[offset+i] = byte(v >> (56 - 8*i))
	}
	return true
}

// ExtractTimestamp reads a timestamp embedded by EmbedTimestamp.
func ExtractTimestamp(data []byte, offset int) (timing.Timestamp, bool) {
	if offset < 0 || offset+TimestampLen > len(data) {
		return 0, false
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(data[offset+i])
	}
	return timing.Timestamp(v), true
}

// Config parameterises a Generator.
type Config struct {
	Source  Source
	Spacing Spacing
	// Count stops the generator after that many packets (0 = until the
	// source is exhausted or Stop is called).
	Count uint64
	// EmbedTimestamp enables per-packet TX timestamp embedding at
	// TimestampOffset.
	EmbedTimestamp bool
	// TimestampOffset is the embed location (default
	// DefaultTimestampOffset).
	TimestampOffset int
	// Seed feeds the spacing model's random stream.
	Seed uint64
	// Pool, when set, recycles per-packet frames: emit draws frames from
	// it instead of allocating, and downstream terminal endpoints release
	// them back. Works best with a Source implementing PooledSource
	// (plain Sources still allocate inside Next).
	Pool *wire.Pool

	// MaxTrain caps how many consecutive frames the generator coalesces
	// into one wire.Train (default/1 = the per-frame path). Frames join a
	// train only while they abut exactly on the wire — the next departure
	// instant equals the previous frame's serialization end — so anything
	// a train carries is bit-for-bit the traffic the per-frame path would
	// have produced, delivered in a fraction of the engine events.
	// Coalescing needs a Pool plus a PooledSource and an idle MAC at the
	// emit instant; otherwise emission falls back per frame.
	MaxTrain int
	// Until is the emission deadline in virtual time (0 = none): no frame
	// departs after it, and the generator finishes at the first emission
	// instant past it. Callers that bound a run with Engine.RunUntil(D) +
	// Stop must set Until to D when MaxTrain > 1 — train formation looks
	// ahead of the current instant, and the deadline is what keeps it
	// from emitting frames the per-frame path would never have reached.
	Until sim.Time
}

// Generator drives one card port. It owns the port's OnTransmit hook
// while running.
type Generator struct {
	port   *netfpga.Port
	cfg    Config
	rand   *sim.Rand
	pooled PooledSource // non-nil when Pool is set and Source supports it

	sent    stats.Counter
	dropped uint64
	running bool
	done    func()
	next    *sim.Event
}

// New builds a generator for the port. The configuration must include a
// Source and a Spacing.
func New(port *netfpga.Port, cfg Config) (*Generator, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("gen: no source configured")
	}
	if cfg.Spacing == nil {
		return nil, fmt.Errorf("gen: no spacing configured")
	}
	if cfg.TimestampOffset == 0 {
		cfg.TimestampOffset = DefaultTimestampOffset
	}
	g := &Generator{port: port, cfg: cfg, rand: sim.NewRand(cfg.Seed ^ 0x05170)}
	if cfg.Pool != nil {
		if ps, ok := cfg.Source.(PooledSource); ok {
			g.pooled = ps
		}
	}
	return g, nil
}

// OnDone registers a callback fired when the generator finishes (count
// reached or source exhausted).
func (g *Generator) OnDone(fn func()) { g.done = fn }

// Start begins transmission at instant at (which must not be in the
// past).
func (g *Generator) Start(at sim.Time) {
	e := g.port.Card().Engine
	g.running = true
	if g.cfg.EmbedTimestamp {
		off := g.cfg.TimestampOffset
		g.port.OnTransmit = func(f *wire.Frame, _ sim.Time, ts timing.Timestamp) {
			EmbedTimestamp(f.Data, off, ts)
		}
	}
	g.next = e.Schedule(at, g.emit)
}

// Stop halts the generator after the current packet.
func (g *Generator) Stop() {
	g.running = false
	if g.next != nil {
		g.next.Cancel()
	}
}

// emit pulls one frame from the source and hands it to the MAC, then
// re-arms itself — the per-packet steady state of the generator.
//
//lint:hotpath
func (g *Generator) emit() {
	if !g.running {
		return
	}
	if until := g.cfg.Until; until != 0 && g.port.Card().Engine.Now() > until {
		g.finish()
		return
	}
	if g.cfg.MaxTrain > 1 && g.pooled != nil && g.port.TxIdle() {
		g.emitTrain()
		return
	}
	if g.cfg.Count > 0 && g.sent.Packets+g.dropped >= g.cfg.Count {
		g.finish()
		return
	}
	var f *wire.Frame
	if g.pooled != nil {
		f = g.cfg.Pool.Get(0)
		if !g.pooled.NextInto(f) {
			f.Release()
			g.finish()
			return
		}
	} else {
		f = g.cfg.Source.Next()
		if f == nil {
			g.finish()
			return
		}
	}
	size := f.Size
	if g.port.Enqueue(f) {
		g.sent.Add(wire.WireBytes(size))
	} else {
		g.dropped++
		f.Release()
	}
	gap := g.cfg.Spacing.Next(g.rand)
	if gap < 0 {
		gap = 0
	}
	// emit is the callback of g.next itself, which has just fired:
	// re-arming it reuses the one Event for the generator's lifetime.
	g.port.Card().Engine.RescheduleAfter(g.next, gap)
}

// emitTrain coalesces the longest run of frames that depart back to back
// from the current instant — bounded by MaxTrain, the Until deadline,
// the Count budget and the first non-abutting gap — and hands it to the
// MAC as one wire.Train. The consumption order of source frames and
// spacing draws is exactly the per-frame path's (frame, then its gap),
// so a run formed here is bit- and time-identical to what N per-frame
// emissions would have produced; only the event count differs.
//
//lint:hotpath
func (g *Generator) emitTrain() {
	e := g.port.Card().Engine
	until := g.cfg.Until
	if until == 0 {
		until = sim.Time(math.MaxInt64)
	}
	rate := g.port.Link().Rate
	pool := g.cfg.Pool
	tr := pool.GetTrain()
	limit := g.cfg.MaxTrain
	t := e.Now()    // departure instant of the frame being pulled
	trainEnd := t   // serialization end of the run so far
	uniform := true // all frames byte-identical so far
	for {
		if g.cfg.Count > 0 && g.sent.Packets+g.dropped+uint64(len(tr.Frames)) >= g.cfg.Count {
			break
		}
		f := pool.Get(0)
		if !g.pooled.NextInto(f) {
			f.Release()
			break
		}
		if uniform && len(tr.Frames) > 0 {
			first := tr.Frames[0]
			uniform = f.Size == first.Size && bytes.Equal(f.Data, first.Data)
		}
		tr.Frames = append(tr.Frames, f)
		trainEnd = t.Add(wire.SerializationTime(f.Size, rate))
		gap := g.cfg.Spacing.Next(g.rand)
		if gap < 0 {
			gap = 0
		}
		t = t.Add(gap)
		if len(tr.Frames) >= limit || t != trainEnd || t > until {
			break
		}
	}
	if len(tr.Frames) == 0 {
		// Count exhausted or source dry before the first frame: the
		// per-frame path would finish at this instant too.
		tr.Recycle()
		g.finish()
		return
	}
	if len(tr.Frames) == 1 {
		f := tr.Frames[0]
		tr.Frames[0] = nil
		tr.Frames = tr.Frames[:0]
		tr.Recycle()
		size := f.Size
		if g.port.Enqueue(f) {
			g.sent.Add(wire.WireBytes(size))
		} else {
			g.dropped++
			f.Release()
		}
	} else {
		// Timestamp embedding mutates each frame at MAC latch time, so an
		// OnTransmit hook voids byte-uniformity even for a one-flow run.
		tr.Uniform = uniform && g.port.OnTransmit == nil
		for _, f := range tr.Frames {
			g.sent.Add(wire.WireBytes(f.Size))
		}
		g.port.EnqueueTrain(tr)
	}
	// t is the departure instant of the first frame NOT in this run: the
	// next emission event, which finishes the generator if it lies past
	// the Until deadline.
	e.Reschedule(g.next, t)
}

func (g *Generator) finish() {
	g.running = false
	if g.done != nil {
		g.done()
	}
}

// Running reports whether the generator is still scheduled.
func (g *Generator) Running() bool { return g.running }

// Sent returns packets/wire-bytes accepted by the MAC queue.
func (g *Generator) Sent() stats.Counter { return g.sent }

// Dropped returns packets refused by a full TX queue (offered load beyond
// line rate).
func (g *Generator) Dropped() uint64 { return g.dropped }
