package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if m := h.Mean(); m != 50.5 {
		t.Fatalf("Mean = %v", m)
	}
	// With 64 sub-buckets, values ≤ 127 are exact.
	if p := h.Percentile(50); p != 50 {
		t.Fatalf("p50 = %d, want 50", p)
	}
	if p := h.Percentile(99); p != 99 {
		t.Fatalf("p99 = %d, want 99", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Fatalf("p100 = %d, want 100", p)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	const v = 1_000_000
	h.Record(v)
	got := h.Percentile(50)
	if got > v || float64(v-got)/v > 1.0/64 {
		t.Fatalf("p50 of single sample %d = %d (error > 1/64)", v, got)
	}
}

// Property: for any sample, the bucket's reported value is ≤ the sample
// and within 1/64 relative error.
func TestPropertyBucketError(t *testing.T) {
	f := func(raw uint64) bool {
		v := int64(raw >> 1) // non-negative
		lo := bucketLow(bucketIndex(v))
		if lo > v {
			return false
		}
		if v >= 64 && float64(v-lo) > float64(v)/64 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: bucketLow(bucketIndex(v)) maps into the same bucket (the
// bucket function is idempotent on its representative).
func TestPropertyBucketIdempotent(t *testing.T) {
	f := func(raw uint64) bool {
		v := int64(raw >> 1)
		i := bucketIndex(v)
		return bucketIndex(bucketLow(i)) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Percentile(50) != 0 {
		t.Fatal("negative sample not clamped to 0 bucket")
	}
	if h.Mean() != 0 {
		t.Fatalf("Mean should reflect the clamped sample, got %v", h.Mean())
	}
}

// Regression: Record used to add the raw value to the mean accumulator
// while clamping only the bucketed copy, so mean and percentiles
// described different sample sets on a negative tail. All statistics
// must now agree on the clamped samples — Mean can never undershoot
// Percentile(0).
func TestHistogramNegativeSamplesConsistent(t *testing.T) {
	h := NewHistogram()
	h.Record(-500)
	h.Record(100)
	if got := h.Mean(); got != 50 {
		t.Fatalf("Mean = %v, want 50 (clamped samples 0 and 100)", got)
	}
	if h.Min() != 0 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d, want 0/100", h.Min(), h.Max())
	}
	if p0 := h.Percentile(0); float64(p0) > h.Mean() {
		t.Fatalf("Percentile(0)=%d exceeds Mean=%v", p0, h.Mean())
	}
	// The same semantics must survive a Merge.
	o := NewHistogram()
	o.Record(-100)
	h.Merge(o)
	if got := h.Mean(); got != 100.0/3 {
		t.Fatalf("merged Mean = %v, want %v", got, 100.0/3)
	}
}

// Regression: Percentile(100) used to return the lower bound of the
// last non-empty bucket — the scan always satisfies seen >= rank, so
// the trailing `return h.max` was unreachable and the reported worst
// case undershot the real maximum by up to 1/64. p=100 must return the
// exact recorded max even when it sits above its bucket floor.
func TestHistogramPercentile100ExactMax(t *testing.T) {
	h := NewHistogram()
	const v = 1_000_003 // not a bucket boundary: bucketLow(bucketIndex(v)) < v
	if bucketLow(bucketIndex(v)) == v {
		t.Fatal("test value sits on a bucket floor, pick another")
	}
	h.Record(1000)
	h.Record(v)
	if got := h.Percentile(100); got != v {
		t.Fatalf("Percentile(100) = %d, want exact max %d", got, v)
	}
	if got := h.Percentile(200); got != v {
		t.Fatalf("Percentile(200) = %d, want clamp to exact max %d", got, v)
	}
	// Just below 100 still reports the (floored) bucket bound.
	if got := h.Percentile(99.999); got > v {
		t.Fatalf("Percentile(99.999) = %d exceeds max %d", got, v)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(0); i < 50; i++ {
		a.Record(i)
	}
	for i := int64(50); i < 100; i++ {
		b.Record(i)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != 99 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	// Samples are 0..99, so the 50th smallest (rank ceil(0.5·100)) is 49.
	if p := a.Percentile(50); p != 49 {
		t.Fatalf("merged p50 = %d", p)
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	s := h.Summary(1000, "ns")
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "mean=1.0ns") {
		t.Fatalf("Summary = %q", s)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if w.Mean() != 5 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	// Sample variance of that classic set is 32/7.
	if v := w.Variance(); math.Abs(v-32.0/7) > 1e-9 {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7)
	}
	if s := w.Stddev(); math.Abs(s-math.Sqrt(32.0/7)) > 1e-9 {
		t.Fatalf("Stddev = %v", s)
	}
}

func TestWelfordFewSamples(t *testing.T) {
	var w Welford
	if w.Variance() != 0 {
		t.Fatal("variance of empty set")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Fatal("variance of single sample")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(64)
	c.Add(1500)
	if c.Packets != 2 || c.Bytes != 1564 {
		t.Fatalf("counter %+v", c)
	}
	d := c.Sub(Counter{Packets: 1, Bytes: 64})
	if d.Packets != 1 || d.Bytes != 1500 {
		t.Fatalf("sub %+v", d)
	}
	if bps := d.BitsPerSecond(2); bps != 6000 {
		t.Fatalf("bps = %v", bps)
	}
	if pps := d.PacketsPerSecond(0.5); pps != 2 {
		t.Fatalf("pps = %v", pps)
	}
	if d.BitsPerSecond(0) != 0 || d.PacketsPerSecond(-1) != 0 {
		t.Fatal("zero elapsed must not divide")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 30)
	s.Add(3, 20)
	if y, ok := s.YAt(2); !ok || y != 30 {
		t.Fatalf("YAt(2) = %v %v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Fatal("YAt of missing x")
	}
	if s.MaxY() != 30 {
		t.Fatalf("MaxY = %v", s.MaxY())
	}
	var empty Series
	if empty.MaxY() != 0 {
		t.Fatal("MaxY of empty series")
	}
}

func TestTableString(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"size", "rate"}}
	tb.AddRow("64", "14.88")
	tb.AddRow("1518", "0.81")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[2], "64  ") {
		t.Fatalf("row align: %q", lines[2])
	}
}

func TestQuantiles(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	qs := Quantiles(s, 0, 50, 100)
	if qs[0] != 1 || qs[2] != 10 {
		t.Fatalf("q0/q100 = %v/%v", qs[0], qs[2])
	}
	if qs[1] != 5.5 {
		t.Fatalf("median = %v, want 5.5", qs[1])
	}
	if got := Quantiles(nil, 50); got[0] != 0 {
		t.Fatal("empty quantiles")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i%1000000 + 500))
	}
}

func BenchmarkHistogramPercentile(b *testing.B) {
	h := NewHistogram()
	for i := int64(0); i < 1_000_000; i++ {
		h.Record(i % 100000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Percentile(99)
	}
}
