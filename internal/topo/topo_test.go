package topo

import (
	"strings"
	"testing"

	"osnt/internal/gen"
	"osnt/internal/netfpga"
	"osnt/internal/ofswitch"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/switchsim"
	"osnt/internal/wire"
)

var testSpec = packet.UDPSpec{
	SrcMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x01},
	DstMAC:  packet.MAC{0x02, 0x05, 0x17, 0, 0, 0x02},
	SrcIP:   packet.IP4{10, 0, 0, 1},
	DstIP:   packet.IP4{10, 0, 0, 2},
	SrcPort: 5000, DstPort: 7000,
}

// wantBuildError asserts Build fails and the message mentions every
// fragment (validation must name the offending nodes/ports).
func wantBuildError(t *testing.T, b *Builder, fragments ...string) {
	t.Helper()
	_, err := b.Build(sim.NewEngine())
	if err == nil {
		t.Fatal("Build succeeded, want validation error")
	}
	for _, frag := range fragments {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
}

func TestValidationDanglingEdge(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{}).Link("osnt:0", "ghost:1"),
		"unknown node", "ghost")
}

func TestValidationPortOutOfRange(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{}).Sink("s").Link("osnt:4", "s"),
		"out of range", "osnt:4")
	wantBuildError(t,
		New().Tester("a", netfpga.Config{Ports: 2}).DUT("sw", switchsim.Config{}).Link("a:0", "sw:7"),
		"out of range", "sw:7")
}

func TestValidationTransmitPortReuse(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{}).Sink("a").Sink("b").
			Link("osnt:0", "a").Link("osnt:0", "b"),
		"transmit port osnt:0")
}

func TestValidationReceivePortReuse(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{}).Sink("a").
			Link("osnt:0", "a").Link("osnt:1", "a"),
		"receive port a:0")
}

func TestValidationRateMismatch(t *testing.T) {
	// Explicit 40G edge into a 10G DUT port.
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{Rate: wire.Rate40G}).
			DUT("sw", switchsim.Config{}).
			LinkAt("osnt:0", "sw:0", wire.Rate40G, 0),
		"40Gb/s", `dut "sw"`)
	// Inherited rates that disagree between the endpoints.
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{Rate: wire.Rate40G}).
			DUT("sw", switchsim.Config{}).
			Link("osnt:0", "sw:0"),
		"40Gb/s", "10Gb/s")
}

func TestValidationSinkCannotTransmit(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{}).Sink("s").Link("s", "osnt:0"),
		"sink", "cannot transmit")
}

func TestValidationDuplicateAndBadNames(t *testing.T) {
	wantBuildError(t,
		New().Tester("x", netfpga.Config{}).DUT("x", switchsim.Config{}),
		"duplicate node name")
	wantBuildError(t, New().Sink("a:b"), "contains ':'")
	wantBuildError(t, New().Sink(""), "empty name")
}

func TestValidationReportsAllErrorsAtOnce(t *testing.T) {
	wantBuildError(t,
		New().Tester("osnt", netfpga.Config{}).
			Link("osnt:0", "ghost").
			Link("osnt:9", "osnt:1"),
		"ghost", "osnt:9")
}

// The builder must wire a working rig: generator traffic through a DUT
// arrives at the far tester port, and sinks count what reaches them.
func TestBuildWiresWorkingTopology(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		Tester("osnt", netfpga.Config{}).
		DUT("sw", switchsim.Config{}).
		Sink("drop").
		Link("osnt:0", "sw:0").
		Duplex("sw:1", "osnt:1").
		Link("osnt:2", "drop").
		MustBuild(e)

	sw := tp.DUT("sw")
	sw.Learn(testSpec.DstMAC, 1)

	g, err := gen.New(tp.Port("osnt:0"), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: testSpec, FrameSize: 64},
		Spacing: gen.CBRForLoad(64, wire.Rate10G, 0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(0)
	e.RunUntil(sim.Time(100 * sim.Microsecond))
	g.Stop()
	e.Run()

	sent := g.Sent().Packets
	if sent == 0 {
		t.Fatal("generator sent nothing")
	}
	if got := tp.Port("osnt:1").RxStats().Packets; got != sent {
		t.Fatalf("tester port 1 received %d of %d packets through the DUT", got, sent)
	}

	// Sinks count and release.
	g2, err := gen.New(tp.Port("osnt:2"), gen.Config{
		Source:  &gen.UDPFlowSource{Spec: testSpec, FrameSize: 64},
		Spacing: gen.CBRForLoad(64, wire.Rate10G, 1.0),
	})
	if err != nil {
		t.Fatal(err)
	}
	g2.Start(e.Now())
	e.RunFor(10 * sim.Microsecond)
	g2.Stop()
	e.Run()
	if got := tp.Sink("drop").Received().Packets; got != g2.Sent().Packets {
		t.Fatalf("sink received %d of %d", got, g2.Sent().Packets)
	}
}

// An OFSwitch node wires the oflops-style rig: the edge inherits the
// switch's native rate and the ports implement wire.Endpoint.
func TestBuildOFSwitchNode(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		Tester("osnt", netfpga.Config{}).
		OFSwitch("sw", ofswitch.Config{}).
		Duplex("osnt:0", "sw:0").
		Duplex("osnt:1", "sw:1").
		MustBuild(e)
	if tp.OFSwitch("sw").NumPorts() != 4 {
		t.Fatal("OF switch not instantiated with default ports")
	}
	if tp.Tester("osnt").Card.Port(0).Link() == nil {
		t.Fatal("tester port 0 has no egress link")
	}
}

// Handle lookups with the wrong name or kind are programming errors and
// must panic loudly rather than return nil handles.
func TestHandlePanics(t *testing.T) {
	e := sim.NewEngine()
	tp := New().Tester("osnt", netfpga.Config{}).MustBuild(e)
	for name, fn := range map[string]func(){
		"unknown node": func() { tp.Tester("nope") },
		"wrong kind":   func() { tp.DUT("osnt") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Build is terminal: a second Build on the same Builder must fail rather
// than silently re-pointing the first Topology's handles at a second
// engine's devices.
func TestBuildIsTerminal(t *testing.T) {
	b := New().Tester("osnt", netfpga.Config{})
	t1, err := b.Build(sim.NewEngine())
	if err != nil {
		t.Fatal(err)
	}
	dev := t1.Tester("osnt")
	if _, err := b.Build(sim.NewEngine()); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("second Build: err = %v, want reuse error", err)
	}
	if t1.Tester("osnt") != dev {
		t.Fatal("first topology's handle changed")
	}
}

// Topology.Port holds references to the same grammar Build validates.
func TestPortReferenceStrictness(t *testing.T) {
	tp := New().Tester("osnt", netfpga.Config{}).MustBuild(sim.NewEngine())
	for _, ref := range []string{"osnt:-1", "osnt:", "osnt:x", "osnt:4"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Port(%q): no panic", ref)
				}
			}()
			tp.Port(ref)
		}()
	}
	if tp.Port("osnt") != tp.Port("osnt:0") {
		t.Fatal("bare node reference is not port 0")
	}
}

// A 40G scenario builds end to end: the first consumer of wire.Rate40G
// outside the experiments.
func TestBuild40GLoopback(t *testing.T) {
	e := sim.NewEngine()
	tp := New().
		Tester("osnt", netfpga.Config{Ports: 2, Rate: wire.Rate40G}).
		Link("osnt:0", "osnt:1").
		MustBuild(e)
	l := tp.Port("osnt:0").Link()
	if l == nil || l.Rate != wire.Rate40G {
		t.Fatalf("loopback link rate = %v, want 40G", l.Rate)
	}
}
