package experiments

import (
	"fmt"

	"osnt/internal/gen"
	"osnt/internal/mon"
	"osnt/internal/netfpga"
	"osnt/internal/runner"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// E14QueueCounts sweeps the number of per-port DMA capture queues,
// heaviest (most queues) first for the worker pool.
var E14QueueCounts = []int{8, 4, 2, 1}

// E14FrameSizes spans the 100G line-rate extremes plus a mid size: 64 B
// is the 148.81 Mpps worst case no host path can absorb, 1518 B the
// 8.13 Mpps case a single drain core already loses.
var E14FrameSizes = []int{64, 512, 1518}

// e14Flows is the flow count of the generator workload: enough distinct
// flows that RSS hash steering spreads them usefully across 8 queues.
const e14Flows = 64

// E14Capture100G is the 100G capture sweep the multi-queue DMA engine
// unlocks: one wire.Rate100G port generating at 100% of line rate into a
// monitor whose capture is thinned to 64 B and spread across 1/2/4/8
// per-queue descriptor rings by RSS hash steering over 64 flows.
//
// Each queue's host core drains one thinned record per
// HostPerPacket + 64·HostPerByte ≈ 171 ns, about 5.8 Mpps — so a single
// queue saturates far below even the 1518 B line rate (8.13 Mpps) and
// the loss-limited path of E7 reappears one rate tier up. Spreading the
// same capture across queues multiplies the drain: two queues restore
// lossless 1518 B capture, eight restore 512 B (23.47 Mpps), while 64 B
// line rate (148.81 Mpps) stays beyond any host path — the reason
// thinning, filtering and multi-queue DMA compose rather than compete.
// The imbal column is the hottest queue's load over the per-queue mean
// (1.0 = perfectly spread), showing what hash steering costs against
// the round-robin ideal.
func E14Capture100G(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 2 * sim.Millisecond
	}
	tbl := &stats.Table{
		Title:   "E14: 100G capture — per-queue DMA rings vs the loss-limited host path (snap 64, RSS hash steer, 64 flows)",
		Columns: []string{"queues", "frame(B)", "offered(Mpps)", "mac-rx(Mpps)", "host(Mpps)", "host(%)", "ring-drops", "imbal", "lossless"},
	}
	points := len(E14QueueCounts) * len(E14FrameSizes)
	tbl.Rows = sweeper().Rows(points, func(i int) [][]string {
		nq := E14QueueCounts[i/len(E14FrameSizes)]
		fs := E14FrameSizes[i%len(E14FrameSizes)]
		e := sim.NewEngine()
		t := topo.New().
			Tester("osnt", netfpga.Config{Ports: 2, Rate: wire.Rate100G}).
			Link("osnt:0", "osnt:1").
			MustBuild(e)
		m := t.AttachMonitor("osnt:1", mon.Config{
			SnapLen: 64,
			Queues:  make([]mon.QueueConfig, nq), // default ring + host core per queue
		})
		g, err := gen.New(t.Port("osnt:0"), gen.Config{
			Source:  &gen.UDPFlowSource{Spec: probeSpec, NumFlows: e14Flows, FrameSize: fs},
			Spacing: gen.CBRForLoad(fs, wire.Rate100G, 1.0),
			Pool:    wire.DefaultPool,
			Seed:    runner.PointSeed(0xe14, i),
			// Frame-train coalescing: at load 1.0 every frame abuts its
			// predecessor, so the whole hot path batches — same table,
			// a fraction of the engine events.
			MaxTrain: trainCap(64),
			Until:    sim.Time(duration),
		})
		if err != nil {
			panic(err)
		}
		g.Start(0)
		e.RunUntil(sim.Time(duration))
		g.Stop()
		e.Run() // drain in-flight frames and every capture ring

		pq := stats.NewPerQueue(m.NumQueues())
		for q := 0; q < m.NumQueues(); q++ {
			qs := m.QueueStats(q)
			pq.Set(q, qs.Seen.Packets, qs.Delivered.Packets, qs.RingDrops)
		}
		offered := g.Sent().Packets
		macRx := m.Seen().Packets
		host := pq.TotalDelivered()
		drops := pq.TotalDropped()
		secs := duration.Seconds()
		hostPct := 0.0
		if macRx > 0 {
			hostPct = float64(host) / float64(macRx) * 100
		}
		return [][]string{{
			fmt.Sprintf("%d", nq),
			fmt.Sprintf("%d", fs),
			fmt.Sprintf("%.3f", float64(offered)/secs/1e6),
			fmt.Sprintf("%.3f", float64(macRx)/secs/1e6),
			fmt.Sprintf("%.3f", float64(host)/secs/1e6),
			fmt.Sprintf("%.1f", hostPct),
			fmt.Sprintf("%d", drops),
			fmt.Sprintf("%.2f", pq.Imbalance()),
			fmt.Sprintf("%v", drops == 0),
		}}
	})
	return tbl
}

// SteerMicroBench drives the multi-queue steering hot path in
// isolation: 64 B line-rate capture at 10G spread across 8 idealised
// queues (zero-cost hosts, so nothing queues and every packet crosses
// steer → ring → drain). cmd/benchgate samples it as the steering
// micro-benchmark; the returned count is the packets delivered across
// all queues, which callers assert to keep the rig honest.
func SteerMicroBench(duration sim.Duration) uint64 {
	if duration == 0 {
		duration = sim.Millisecond
	}
	e := sim.NewEngine()
	t := topo.New().
		Tester("osnt", netfpga.Config{Ports: 2}).
		Link("osnt:0", "osnt:1").
		MustBuild(e)
	queues := make([]mon.QueueConfig, 8)
	for i := range queues {
		queues[i] = mon.QueueConfig{HostPerPacket: sim.Picosecond, HostPerByte: -1}
	}
	m := t.AttachMonitor("osnt:1", mon.Config{SnapLen: 64, Queues: queues})
	g, err := gen.New(t.Port("osnt:0"), gen.Config{
		Source:   &gen.UDPFlowSource{Spec: probeSpec, NumFlows: e14Flows, FrameSize: 64},
		Spacing:  gen.CBRForLoad(64, wire.Rate10G, 1.0),
		Pool:     wire.DefaultPool,
		Seed:     runner.PointSeed(0xe14, 0x5eed),
		MaxTrain: trainCap(64),
		Until:    sim.Time(duration),
	})
	if err != nil {
		panic(err)
	}
	g.Start(0)
	e.RunUntil(sim.Time(duration))
	g.Stop()
	e.Run()
	return m.Delivered().Packets
}
