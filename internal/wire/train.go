package wire

import (
	"osnt/internal/sim"
)

// Train is a contiguous run of back-to-back frames on one wire: frame
// k+1's first bit follows frame k's last bit with no idle gap beyond the
// standard inter-frame gap (which SerializationTime already accounts
// for). It is the GRO/GSO-style batching unit of the hot path: a
// generator that emits N abutting frames hands the whole run to the link
// as one Train, the link carries it as one in-flight entry drained by
// one event, and every downstream device recovers the exact per-frame
// first-bit/last-bit instants arithmetically from Rate and the frame
// sizes. Coalescing therefore changes how many engine events the run
// costs — never a timestamp, a counter, or a drop decision.
//
// A Train never implies anything about frame contents: sizes and bytes
// may vary frame to frame. Uniform marks the special case of
// byte-identical frames (one flow, no per-frame mutation), which lets
// consumers hoist per-flow work — a filter verdict, an RSS hash, an FDB
// lookup — out of the per-frame loop. Consumers that find Uniform false
// simply iterate.
//
// Ownership follows the Frame rule: exactly one component owns the train
// at a time. The owner consumes the frames (forwarding each onward, or
// releasing it) and then returns the container itself with Recycle; the
// Release shorthand drops everything at once. The container and its
// Frames slice recycle through the owning Pool, so steady-state batching
// allocates nothing.
type Train struct {
	// Frames holds the run in wire order; len(Frames) >= 1.
	Frames []*Frame
	// Rate is the serialization rate of the wire that carried the run;
	// per-frame boundaries inside the train derive from it.
	Rate Rate
	// Uniform reports that every frame carries identical bytes (and
	// hence an identical size and flow digest).
	Uniform bool

	pool *Pool
}

// Len returns the number of frames in the run.
func (t *Train) Len() int { return len(t.Frames) }

// Span returns the total wire occupancy of the run at t.Rate.
func (t *Train) Span() sim.Duration {
	var d sim.Duration
	for _, f := range t.Frames {
		d += SerializationTime(f.Size, t.Rate)
	}
	return d
}

// WireBytesTotal returns the summed wire byte times of the run.
func (t *Train) WireBytesTotal() int {
	n := 0
	for _, f := range t.Frames {
		n += WireBytes(f.Size)
	}
	return n
}

// Release drops the whole run: every frame returns to its pool, then the
// container recycles. The terminal-endpoint shorthand.
func (t *Train) Release() {
	for i, f := range t.Frames {
		t.Frames[i] = nil
		f.Release()
	}
	t.Frames = t.Frames[:0]
	t.Recycle()
}

// Recycle returns the container (not the frames) to its pool. Callers
// that consumed the frames individually — forwarded them onward, released
// them one by one — finish with Recycle so the slice's backing array is
// reused by the next train. A no-op on unpooled trains.
func (t *Train) Recycle() {
	if p := t.pool; p != nil {
		t.pool = nil
		p.putTrain(t)
	}
}

// TrainEndpoint is an Endpoint that can accept a whole frame train in
// one delivery. start and at are the first frame's first-bit and
// last-bit arrival instants; later frames' instants follow
// arithmetically at t.Rate. Links probe for it on delivery and fall back
// to per-frame Receive calls (computing those instants themselves) when
// the peer does not implement it, so train traffic works against every
// endpoint and batch-aware endpoints just skip the per-frame events.
type TrainEndpoint interface {
	Endpoint
	ReceiveTrain(t *Train, start, at sim.Time)
}

// TransmitTrain is TransmitAt for a whole back-to-back run, starting no
// earlier than the given instant: the frames serialise consecutively
// (each start clamped by the link's busy horizon, exactly as N
// TransmitAt calls would), but the run occupies a single in-flight entry
// and a single delivery event. It returns the instant the last bit of
// the last frame leaves the sender. The train must be non-empty; a
// train of one degrades to the plain per-frame transmit.
//
//lint:hotpath
func (l *Link) TransmitTrain(t *Train, earliest sim.Time) sim.Time {
	if len(t.Frames) == 1 {
		f := t.Frames[0]
		t.Frames[0] = nil
		t.Frames = t.Frames[:0]
		t.Recycle()
		return l.TransmitAt(f, earliest)
	}
	start := earliest
	if l.busyUntil > start {
		start = l.busyUntil
	}
	end := start
	for _, f := range t.Frames {
		end = end.Add(SerializationTime(f.Size, l.Rate))
		l.txBytes += uint64(WireBytes(f.Size))
	}
	l.busyUntil = end
	l.txFrames += uint64(len(t.Frames))
	if l.exporter != nil {
		// Boundary link: the whole run transfers to the destination shard
		// as one record; per-frame boundaries replay from Rate there. The
		// record carries the link's delivery key, exactly as a local train
		// delivery event would (it fires at the FIRST frame's arrival).
		t.Rate = l.Rate
		firstEnd := start.Add(SerializationTime(t.Frames[0].Size, l.Rate))
		l.exporter.ExportTrain(t, start.Add(l.Delay), firstEnd.Add(l.Delay), l.deliverPrio)
		return end
	}
	if l.Peer == nil {
		l.drops += uint64(len(t.Frames))
		l.ledger.Report(l.hop, DropUnterminated, uint64(len(t.Frames)))
		t.Release()
		return end
	}
	t.Rate = l.Rate
	// The in-flight entry's window is the FIRST frame's: deliver() walks
	// the later frames' boundaries arithmetically.
	firstEnd := start.Add(SerializationTime(t.Frames[0].Size, l.Rate))
	l.pending.Push(inflight{train: t, firstBit: start.Add(l.Delay), lastBit: firstEnd.Add(l.Delay)})
	if l.pending.Len() == 1 {
		eventAt := firstEnd.Add(l.Delay)
		if now := l.Engine.Now(); eventAt < now {
			eventAt = now
		}
		if l.deliverEv == nil {
			//lint:ignore hotpathalloc one-time event creation per link; steady state reschedules
			l.deliverEv = l.Engine.SchedulePrio(eventAt, l.deliverPrio, l.deliver)
		} else {
			l.Engine.ReschedulePrio(l.deliverEv, eventAt, l.deliverPrio)
		}
	}
	return end
}
