// Package analysistest runs an analyzer over a corpus package under
// testdata/src and checks its diagnostics against // want annotations, the
// same contract as golang.org/x/tools/go/analysis/analysistest:
//
//	f := pool.Get(64) // want "not released"
//
// Each want string is a regular expression that must match a diagnostic
// reported on that line; every diagnostic must be matched by a want and
// every want must be matched by a diagnostic. lint:ignore directives are
// honoured through the production suppression path, so corpora also pin
// the escape-hatch behaviour.
//
// Corpus packages import their dependencies by bare path ("wire", "sim"):
// those resolve to sibling directories under testdata/src, so the corpora
// carry miniature stand-ins for the real osnt packages and stay
// self-contained. Standard-library imports resolve normally.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"osnt/internal/analysis"
)

// Run loads testdata/src/<pkg> for each named package (relative to dir,
// typically "testdata") and applies the analyzer, comparing diagnostics
// against // want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	for _, name := range pkgs {
		ld := &loader{
			src:    src,
			fset:   token.NewFileSet(),
			loaded: map[string]*analysis.Package{},
		}
		ld.std = importer.ForCompiler(ld.fset, "source", nil)
		pkg, err := ld.load(name)
		if err != nil {
			t.Fatalf("loading corpus %s: %v", name, err)
		}
		diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, name, err)
		}
		check(t, a.Name, name, ld.fset, pkg, diags)
	}
}

// loader resolves corpus-local imports to sibling testdata/src packages
// and everything else to the standard library.
type loader struct {
	src    string
	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*analysis.Package
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		if _, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(ipath))); err == nil {
			dep, err := l.load(ipath)
			if err != nil {
				return nil, err
			}
			return dep.Types, nil
		}
		return l.std.Import(ipath)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &analysis.Package{
		PkgPath: path,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.loaded[path] = pkg
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// want is one expectation parsed from a corpus comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRe matches a want directive; quotedRe then pulls out each quoted
// expectation, so one comment can carry several: // want "a" "b".
var (
	wantRe   = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
	quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

// check compares diagnostics against the corpus's want annotations.
func check(t *testing.T, analyzer, corpus string, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		filename := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(q[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), q[1], err)
						}
						wants = append(wants, &want{
							file: filename,
							line: fset.Position(c.Pos()).Line,
							re:   re,
						})
					}
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: [%s/%s] unexpected diagnostic: %s", pos, analyzer, corpus, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: [%s/%s] expected diagnostic matching %q, got none", w.file, w.line, analyzer, corpus, w.re)
		}
	}
}
