// Command osnt-bench regenerates the paper's evaluation: every experiment
// table from DESIGN.md (E1–E8, plus the scaling sweeps E9 multi-port,
// E10 tester mesh and E11 40G ports) printed to stdout. Use -e to select
// a single experiment and -workers to bound sweep parallelism (tables
// are byte-identical at any worker count).
//
// Usage:
//
//	osnt-bench             # run everything, sweeps parallel
//	osnt-bench -e e3       # Demo Part I only
//	osnt-bench -workers 1  # serial reference run
//	osnt-bench -list       # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"osnt/internal/experiments"
	"osnt/internal/stats"
)

var runners = []struct {
	id   string
	desc string
	run  func() *stats.Table
}{
	{"e1", "line-rate generation vs frame size", func() *stats.Table { return experiments.E1LineRate(0) }},
	{"e2", "GPS clock discipline", func() *stats.Table { return experiments.E2ClockDiscipline(0) }},
	{"e3", "legacy switch latency vs load (Demo Part I)", func() *stats.Table { return experiments.E3SwitchLatency(0) }},
	{"e4", "flow_mod control vs data plane latency (Demo Part II)", experiments.E4FlowModLatency},
	{"e5", "forwarding consistency during updates (Demo Part II)", experiments.E5Consistency},
	{"e6", "timestamp noise: hardware vs software", func() *stats.Table { return experiments.E6TimestampNoise(0) }},
	{"e7", "loss-limited capture path", func() *stats.Table { return experiments.E7CapturePath(0) }},
	{"e8", "control channel under dataplane load", experiments.E8ControlUnderLoad},
	{"e9", "multi-port scaling: 1/2/4/8 gen→mon pairs at line rate", func() *stats.Table { return experiments.E9PortScaling(0) }},
	{"e10", "tester mesh: 2/4 cards full-mesh through a DUT", func() *stats.Table { return experiments.E10TesterMesh(0) }},
	{"e11", "40G ports: gen→mon pairs at 40 Gb/s line rate", func() *stats.Table { return experiments.E11Rate40G(0) }},
}

func main() {
	sel := flag.String("e", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()
	experiments.Workers = *workers

	if *list {
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.id, r.desc)
		}
		return
	}
	ran := 0
	for _, r := range runners {
		if *sel != "" && !strings.EqualFold(*sel, r.id) {
			continue
		}
		fmt.Println(r.run().String())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "osnt-bench: unknown experiment %q (try -list)\n", *sel)
		os.Exit(2)
	}
}
