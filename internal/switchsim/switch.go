// Package switchsim models the legacy Ethernet switches OSNT's demo
// measures: a learning switch with a shared lookup/fabric pipeline,
// bounded output queues, and a choice of store-and-forward or cut-through
// forwarding. The model is parametric so every latency-vs-load curve in
// the experiments has controlled ground truth.
//
// Packet latency through the model decomposes exactly as on real
// hardware: ingress serialisation (store-and-forward only) + pipeline
// latency + lookup service (per-ingress server; queueing appears when the
// offered packet rate approaches its capacity, slightly above line rate)
// + egress queueing + egress serialisation.
package switchsim

import (
	"fmt"

	"osnt/internal/packet"
	"osnt/internal/ring"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/wire"
)

// ForwardingMode selects when the switch may start transmitting a frame.
type ForwardingMode int

// Forwarding modes.
const (
	// StoreAndForward waits for the full frame before the lookup.
	StoreAndForward ForwardingMode = iota
	// CutThrough starts the lookup as soon as the 64-byte header window
	// has arrived.
	CutThrough
)

// String names the mode.
func (m ForwardingMode) String() string {
	if m == CutThrough {
		return "cut-through"
	}
	return "store-and-forward"
}

// cutThroughWindow is the bytes a cut-through switch must receive before
// it can make a forwarding decision.
const cutThroughWindow = 64

// Config parameterises a switch.
type Config struct {
	// Ports is the port count (default 4).
	Ports int
	// Rate is the per-port line rate (default 10 Gb/s).
	Rate wire.Rate
	// PortRates overrides Rate per port: entry i (0 = inherit Rate) is
	// port i's rate. A switch whose ports run at different rates performs
	// store-and-forward speed conversion: a frame entering a 10G port
	// bound for a 40G uplink (or the reverse) is fully received before it
	// is forwarded, and the egress FIFO drains at the egress port's own
	// rate, so fan-in overload shows up as bounded queueing delay and
	// then tail drop instead of a modelling artefact.
	PortRates []wire.Rate
	// HopID, when non-zero, makes the switch stamp every forwarded
	// frame's hop trace with this ID at the instant its last bit leaves
	// the egress port (wire.HopTrace). internal/topo assigns DUTs
	// sequential IDs so multi-switch chains decompose latency per hop.
	HopID int
	// Mode selects store-and-forward (default) or cut-through.
	Mode ForwardingMode
	// PipelineLatency is the fixed parse/lookup/fabric delay every packet
	// experiences regardless of load (default 450 ns, a typical ToR
	// figure). It is pipelined: it adds latency but consumes no
	// throughput.
	PipelineLatency sim.Duration
	// LookupPerPacket is the per-packet service time of each ingress
	// lookup engine (default 20 ns); together with LookupPerByte it sets
	// the pipeline's capacity.
	LookupPerPacket sim.Duration
	// LookupPerByte adds a per-byte service cost; the default (0.76 ns/B,
	// ≈5% fabric overspeed at 10G) makes the pipeline saturate just
	// above line rate, producing the classic latency hockey stick.
	LookupPerByte sim.Duration
	// LookupJitter adds uniform noise to each lookup service time: a
	// value j draws the service from [1-j, 1+j] times the mean. Real
	// lookup engines (hash probes, TCAM arbitration) are not perfectly
	// deterministic; jitter is what turns queueing near saturation into
	// the gradual latency rise measured on real devices. Default 0
	// (deterministic), opt in per experiment.
	LookupJitter float64
	// Seed feeds the jitter random stream.
	Seed uint64
	// SpraySeed salts the ECMP spray hash. On a multi-stage fabric
	// every switch hashing the same headers the same way is a
	// pathology: a flow that picked uplink m at the first stage picks
	// member m again at the next, so equal-width sprays collapse onto
	// one downstream path. Giving each switch its own salt (as real
	// fabrics seed their hash functions per device) decorrelates the
	// stages. Default 0 — a single spraying switch needs no salt, and
	// existing single-stage rigs are unchanged.
	SpraySeed uint64
	// LookupQueueCap bounds each ingress lookup queue in packets (default
	// 512); overflow is dropped and counted.
	LookupQueueCap int
	// EgressQueueCap bounds each output queue in packets (default 512).
	EgressQueueCap int
}

func (c *Config) fill() {
	if c.Ports == 0 {
		c.Ports = 4
	}
	if c.Rate == 0 {
		c.Rate = wire.Rate10G
	}
	if c.PipelineLatency == 0 {
		c.PipelineLatency = 450 * sim.Nanosecond
	}
	if c.LookupPerPacket == 0 {
		c.LookupPerPacket = 20 * sim.Nanosecond
	}
	if c.LookupPerByte == 0 {
		c.LookupPerByte = sim.Picoseconds(760)
	}
	if c.LookupQueueCap == 0 {
		c.LookupQueueCap = 512
	}
	if c.EgressQueueCap == 0 {
		c.EgressQueueCap = 512
	}
}

// Switch is one simulated device under test.
type Switch struct {
	Engine *sim.Engine

	cfg   Config
	ports []*Port
	fdb   map[packet.MAC]int
	rand  *sim.Rand

	// ECMP groups: groups[g-1] is the member port list of group g
	// (1-based, AddGroup order); groupOf[p] is the group containing
	// port p, 0 when ungrouped. The FDB stores a group destination as
	// the negative id -g.
	groups  [][]int
	groupOf []int
	sprays  uint64

	lookupDrops  uint64
	runtDrops    uint64
	hairpinDrops uint64
	floods       uint64
	forwarded    stats.Counter

	// Loss attribution: every drop path reports (dropHop, reason) into
	// the scenario ledger when one is attached (topo threads it with
	// the same hop ID that stamps the HopTrace). The per-device
	// counters above remain the local views.
	ledger  *wire.DropLedger
	dropHop int
}

type pendingLookup struct {
	f *wire.Frame
	// train, when non-nil, is a coalesced uniform run occupying one FIFO
	// entry (f is nil): lastBit and readyAt are the FIRST frame's
	// instants and span is the per-frame ingress occupancy, so every
	// later frame's instants follow arithmetically (lastBit_k =
	// lastBit + k·span, readyAt_k = readyAt + k·span — exact because the
	// train fast path requires service ≤ span, see trainViable).
	train   *wire.Train
	inPort  int
	lastBit sim.Time     // frame fully received at the ingress MAC
	span    sim.Duration // ingress wire occupancy (lastBit - firstBit)
	readyAt sim.Time     // decision + pipeline latency complete
}

// New builds a switch on the engine.
func New(e *sim.Engine, cfg Config) *Switch {
	cfg.fill()
	if len(cfg.PortRates) > cfg.Ports {
		panic(fmt.Sprintf("switchsim: %d per-port rates for %d ports", len(cfg.PortRates), cfg.Ports))
	}
	s := &Switch{
		Engine:  e,
		cfg:     cfg,
		fdb:     make(map[packet.MAC]int),
		rand:    sim.NewRand(cfg.Seed ^ 0x5057),
		groupOf: make([]int, cfg.Ports),
	}
	for i := 0; i < cfg.Ports; i++ {
		s.ports = append(s.ports, &Port{sw: s, index: i})
	}
	return s
}

// SetDropSite attaches the scenario's loss-attribution ledger; every
// drop path on the switch reports at the given hop ID (topo passes the
// same ID that stamps the hop trace, so loss attribution and latency
// decomposition share a namespace).
func (s *Switch) SetDropSite(ledger *wire.DropLedger, hop int) {
	s.ledger, s.dropHop = ledger, hop
}

// AddGroup registers an ECMP group over the given egress ports and
// returns its 1-based id. Forwarding toward a group (LearnGroup) sprays
// each flow deterministically across the members by a whitened digest
// over the frame's headers — the switch-fabric analogue of the capture
// engine's RSS steering. A port may belong to at most one group.
func (s *Switch) AddGroup(ports ...int) int {
	if len(ports) < 2 {
		panic(fmt.Sprintf("switchsim: ECMP group needs ≥2 member ports, got %d", len(ports)))
	}
	for _, p := range ports {
		if p < 0 || p >= len(s.ports) {
			panic(fmt.Sprintf("switchsim: group member port %d of %d", p, len(s.ports)))
		}
		if s.groupOf[p] != 0 {
			panic(fmt.Sprintf("switchsim: port %d already in group %d", p, s.groupOf[p]))
		}
	}
	s.groups = append(s.groups, append([]int(nil), ports...))
	gid := len(s.groups)
	for _, p := range ports {
		s.groupOf[p] = gid
	}
	return gid
}

// LearnGroup points a station at an ECMP group: frames for mac spray
// across the group's member ports.
func (s *Switch) LearnGroup(mac packet.MAC, gid int) {
	if gid < 1 || gid > len(s.groups) {
		panic(fmt.Sprintf("switchsim: learn on group %d of %d", gid, len(s.groups)))
	}
	s.fdb[mac] = -gid
}

// GroupPorts returns the member ports of group gid.
func (s *Switch) GroupPorts(gid int) []int {
	return append([]int(nil), s.groups[gid-1]...)
}

// sprayMember picks the group member carrying this frame: the hardware
// digest over the L2–L4 headers (packet.HeaderDigestBytes — ECMP must
// hash headers only, or the embedded TX timestamp would move a flow
// between members packet by packet), salted per switch (SpraySeed) and
// whitened by packet.Mix64 (shared with the monitor's RSS steering),
// modulo the member count. Per-flow stable, deterministic,
// allocation-free.
func (s *Switch) sprayMember(gid int, data []byte) int {
	s.sprays++
	return s.memberOf(gid, data)
}

// memberOf is sprayMember's pure selection: the member a frame with
// these bytes lands on, with no counter side effects — usable as a peek.
func (s *Switch) memberOf(gid int, data []byte) int {
	members := s.groups[gid-1]
	h := packet.Mix64(packet.PacketDigest(data, packet.HeaderDigestBytes) ^ s.cfg.SpraySeed)
	return members[int(h%uint64(len(members)))]
}

// Learn seeds the station table without traffic, the programmatic
// equivalent of the warm-up frames a real rig sends before measuring.
// Topology builders use it so measurement windows start with a converged
// FDB instead of a flood transient.
func (s *Switch) Learn(mac packet.MAC, port int) {
	if port < 0 || port >= len(s.ports) {
		panic(fmt.Sprintf("switchsim: learn on port %d of %d", port, len(s.ports)))
	}
	s.fdb[mac] = port
}

// NumPorts returns the port count.
func (s *Switch) NumPorts() int { return len(s.ports) }

// Rate returns the per-port line rate.
func (s *Switch) Rate() wire.Rate { return s.cfg.Rate }

// PortRate returns port i's line rate: its PortRates override when set,
// the switch-wide Rate otherwise.
func (s *Switch) PortRate(i int) wire.Rate {
	if i < len(s.cfg.PortRates) && s.cfg.PortRates[i] != 0 {
		return s.cfg.PortRates[i]
	}
	return s.cfg.Rate
}

// HopID returns the switch's hop-trace ID (0 = stamping disabled).
func (s *Switch) HopID() int { return s.cfg.HopID }

// Port returns port i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// Mode returns the forwarding mode.
func (s *Switch) Mode() ForwardingMode { return s.cfg.Mode }

// LookupDrops returns packets dropped at saturated ingress lookup
// pipelines.
func (s *Switch) LookupDrops() uint64 { return s.lookupDrops }

// RuntDrops returns frames discarded because they were too short to
// carry a parseable Ethernet header.
func (s *Switch) RuntDrops() uint64 { return s.runtDrops }

// HairpinDrops returns frames discarded because their destination was
// learned on the ingress port.
func (s *Switch) HairpinDrops() uint64 { return s.hairpinDrops }

// Sprays returns the number of ECMP member selections performed.
func (s *Switch) Sprays() uint64 { return s.sprays }

// Floods returns packets flooded for unknown/broadcast destinations.
func (s *Switch) Floods() uint64 { return s.floods }

// Forwarded returns counters over frames that left an egress queue.
func (s *Switch) Forwarded() stats.Counter { return s.forwarded }

// MACTable returns a copy of the learned station table.
func (s *Switch) MACTable() map[packet.MAC]int {
	out := make(map[packet.MAC]int, len(s.fdb))
	for k, v := range s.fdb {
		out[k] = v
	}
	return out
}

// receive is called by a Port when a frame has fully arrived (the event
// fires at the last bit; cut-through work is backdated to the header
// window, which is sound because its effects — egress serialisation —
// are themselves modelled with backdatable start times).
//
//lint:hotpath
func (s *Switch) receive(p *Port, f *wire.Frame, firstBit, lastBit sim.Time) {
	// Earliest instant the lookup may begin, by forwarding mode. The
	// header window is timed at the ingress port's own rate: on a
	// mixed-rate switch a 40G port has its 64 bytes 4× sooner than a 10G
	// one.
	start := lastBit
	if s.cfg.Mode == CutThrough {
		window := sim.Duration(cutThroughWindow) * s.PortRate(p.index).ByteTime()
		d := firstBit.Add(window)
		if d > lastBit {
			d = lastBit // tiny frames: header window is the whole frame
		}
		start = d
	}
	if p.lookupFrames >= s.cfg.LookupQueueCap {
		s.lookupDrops++
		s.ledger.Report(s.dropHop, wire.DropLookupOverflow, 1)
		f.Release() // dropped frames go back to their pool
		return
	}
	f.SrcPort = p.index

	// Per-ingress single-server lookup queue, tracked arithmetically so a
	// cut-through lookup can begin "in the past" relative to this event.
	if start < p.lookupFreeAt {
		start = p.lookupFreeAt
	}
	service := s.cfg.LookupPerPacket + sim.Duration(f.Size)*s.cfg.LookupPerByte
	if j := s.cfg.LookupJitter; j > 0 {
		service = sim.Duration(float64(service) * (1 + j*(2*s.rand.Float64()-1)))
	}
	done := start.Add(service)
	p.lookupFreeAt = done
	ready := done.Add(s.cfg.PipelineLatency)

	// Ready instants are monotonic per port (the lookup server is
	// single-threaded and the pipeline delay constant), so the pending
	// lookups form a FIFO drained by one reusable event per port instead
	// of one Event + closure per packet.
	p.lookupQ.Push(pendingLookup{f: f, inPort: p.index, lastBit: lastBit, span: lastBit.Sub(firstBit), readyAt: ready})
	p.lookupFrames++
	if p.lookupQ.Len() == 1 {
		p.armLookup(ready)
	}
}

// trainViable reports whether a uniform run can take the coalesced
// lookup path exactly. The conditions guarantee the per-frame pipeline
// would have produced arithmetically derivable instants and no drops:
// store-and-forward with deterministic service keeps every lookup start
// at its frame's last bit; service ≤ per-frame slot plus an idle server
// at the first arrival means the lookups chain without queueing (ready_k
// = lastBit_k + service + pipeline); and the occupancy margins (half the
// cap, trains at most a quarter of it) keep both worlds — batched
// arrival accounting and interleaved per-frame pops — strictly below the
// overflow threshold, so drop decisions cannot diverge.
//
// The second half peeks at the forwarding decision the train will get:
// coalescing is only exact when the whole run lands on one concrete
// same-rate egress with the same occupancy margin. A rate-converting
// egress changes the spacing between frames, and a flooded, hairpinned
// or near-full egress needs drop/clone decisions interleaved with the
// transmit events that drain it — a coalesced run would make them all at
// one collapsed instant. The peek mutates nothing (learning happens on
// the real path), so a train that fails it replays per frame bit-exactly.
func (s *Switch) trainViable(p *Port, t *wire.Train, at sim.Time) bool {
	n := len(t.Frames)
	if !t.Uniform || n < 2 {
		return false
	}
	if s.cfg.Mode != StoreAndForward || s.cfg.LookupJitter != 0 {
		return false
	}
	qcap := s.cfg.LookupQueueCap
	if p.lookupFrames+n > qcap/2 || n > qcap/4 {
		return false
	}
	if p.lookupFreeAt > at {
		return false
	}
	size := t.Frames[0].Size
	service := s.cfg.LookupPerPacket + sim.Duration(size)*s.cfg.LookupPerByte
	if service > wire.SerializationTime(size, t.Rate) {
		return false
	}
	// Forwarding peek: a known unicast destination on a same-rate,
	// linked, non-hairpin egress with overflow headroom. Between this
	// peek (first frame's last bit) and the decision (lookup ready) the
	// egress can only drain, so the margin checked here still holds when
	// dispatchTrain re-checks it.
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(t.Frames[0].Data); err != nil {
		return false
	}
	out, ok := s.fdb[eth.Dst]
	if !ok || eth.Dst.IsMulticast() {
		return false
	}
	if out < 0 {
		g := -out
		if s.groupOf[p.index] == g {
			return false
		}
		out = s.memberOf(g, t.Frames[0].Data)
	}
	if out == p.index {
		return false
	}
	op := s.ports[out]
	if op.link == nil {
		return false
	}
	if wire.SerializationTime(size, s.PortRate(out)) != wire.SerializationTime(size, t.Rate) {
		return false
	}
	ecap := s.cfg.EgressQueueCap
	return op.queueFrames+n <= ecap/2 && n <= ecap/4
}

// receiveTrain admits a guard-checked uniform run as one lookup-FIFO
// entry drained by one event.
//
//lint:hotpath
func (s *Switch) receiveTrain(p *Port, t *wire.Train, at sim.Time) {
	n := len(t.Frames)
	size := t.Frames[0].Size
	slot := wire.SerializationTime(size, t.Rate)
	service := s.cfg.LookupPerPacket + sim.Duration(size)*s.cfg.LookupPerByte
	for _, f := range t.Frames {
		f.SrcPort = p.index
	}
	// Lookup k runs [lastBit_k, lastBit_k + service] with no queueing
	// (trainViable guarantees service ≤ slot and an idle server), so the
	// server frees when the last frame's lookup completes.
	p.lookupFreeAt = at.Add(sim.Duration(n-1)*slot + service)
	ready := at.Add(service + s.cfg.PipelineLatency)
	p.lookupQ.Push(pendingLookup{train: t, inPort: p.index, lastBit: at, span: slot, readyAt: ready})
	p.lookupFrames += n
	if p.lookupQ.Len() == 1 {
		p.armLookup(ready)
	}
}

// armLookup schedules the port's lookup-complete event at instant ready,
// clamped to the present so backdated cut-through work stays causal.
func (p *Port) armLookup(ready sim.Time) {
	eventAt := ready
	if now := p.sw.Engine.Now(); eventAt < now {
		eventAt = now
	}
	if p.lookupEv == nil {
		//lint:ignore hotpathalloc one-time event creation per port; steady state reschedules
		p.lookupEv = p.sw.Engine.Schedule(eventAt, p.lookupDone)
	} else {
		p.sw.Engine.Reschedule(p.lookupEv, eventAt)
	}
}

// lookupDone pops the head pending lookup, re-arms for the next one, and
// hands the frame to the forwarding decision.
//
//lint:hotpath
func (p *Port) lookupDone() {
	d := p.lookupQ.Pop()
	if d.train != nil {
		p.lookupFrames -= d.train.Len()
	} else {
		p.lookupFrames--
	}
	if p.lookupQ.Len() > 0 {
		p.armLookup(p.lookupQ.Peek().readyAt)
	}
	if d.train != nil {
		p.sw.decideTrain(d)
		return
	}
	p.sw.decide(d)
}

// decideTrain makes one forwarding decision for a uniform run: the
// frames are byte-identical, so source learning, the destination lookup,
// the hairpin verdict, and the ECMP member are per-flow facts computed
// once. Counter and ledger deltas scale by the frame count, keeping
// every observable identical to N per-frame decisions.
func (s *Switch) decideTrain(d pendingLookup) {
	t := d.train
	n := uint64(t.Len())
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(t.Frames[0].Data); err != nil {
		s.runtDrops += n
		s.ledger.Report(s.dropHop, wire.DropRunt, n)
		t.Release()
		return
	}
	if !eth.Src.IsMulticast() {
		if cur, ok := s.fdb[eth.Src]; !ok || cur >= 0 || s.groupOf[d.inPort] != -cur {
			s.fdb[eth.Src] = d.inPort
		}
	}
	out, ok := s.fdb[eth.Dst]
	if !ok || eth.Dst.IsMulticast() {
		// Flooding clones per egress port with per-frame flood
		// accounting; the per-frame decision path already does exactly
		// that.
		s.decidePerFrame(d)
		return
	}
	if out < 0 {
		if g := -out; s.groupOf[d.inPort] == g {
			s.hairpinDrops += n
			s.ledger.Report(s.dropHop, wire.DropHairpin, n)
			t.Release()
			return
		}
		out = s.sprayMember(-out, t.Frames[0].Data)
		s.sprays += n - 1 // sprayMember counted one selection; per-frame counts n
	}
	if out == d.inPort {
		s.hairpinDrops += n
		s.ledger.Report(s.dropHop, wire.DropHairpin, n)
		t.Release()
		return
	}
	s.dispatchTrain(d, out)
}

// decidePerFrame unbundles a train at the decision stage, replaying the
// per-frame path with each frame's exact instants.
func (s *Switch) decidePerFrame(d pendingLookup) {
	t := d.train
	lb, ready := d.lastBit, d.readyAt
	for i, f := range t.Frames {
		t.Frames[i] = nil
		s.decide(pendingLookup{f: f, inPort: d.inPort, lastBit: lb, span: d.span, readyAt: ready})
		lb = lb.Add(d.span)
		ready = ready.Add(d.span)
	}
	t.Frames = t.Frames[:0]
	t.Recycle()
}

// dispatchTrain hands a whole uniform run to one egress port. The run
// stays coalesced — one egress FIFO entry, one transmit event — when the
// egress wire is no faster than the arrival spacing (same-rate egress
// preserves abutment; down-conversion backs the frames up against each
// other) and the queue has the same overflow margin the lookup guard
// demands. A faster egress wire would open gaps between the frames, and
// a near-full queue needs interleaved per-frame drop accounting, so both
// leave per frame instead.
func (s *Switch) dispatchTrain(d pendingLookup, out int) {
	t := d.train
	p := s.ports[out]
	serOut := wire.SerializationTime(t.Frames[0].Size, s.PortRate(out))
	boundary := serOut != d.span
	n := t.Len()
	qcap := s.cfg.EgressQueueCap
	if serOut < d.span || p.link == nil || p.queueFrames+n > qcap/2 || n > qcap/4 {
		// Per-frame egress. In store-and-forward mode readyAt_k is
		// always past lastBit_k (service + pipeline are positive), so
		// dispatch()'s boundary clamp can never fire; earliest is the
		// ready instant directly.
		earliest := d.readyAt
		for i, f := range t.Frames {
			t.Frames[i] = nil
			p.enqueue(f, earliest, boundary)
			earliest = earliest.Add(d.span)
		}
		t.Frames = t.Frames[:0]
		t.Recycle()
		return
	}
	p.queue.Push(queued{train: t, earliest: d.readyAt})
	p.queueFrames += n
	p.trySend()
}

// decide learns the source, looks up the destination, and hands the frame
// to the egress port(s).
func (s *Switch) decide(p pendingLookup) {
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(p.f.Data); err != nil {
		// Runt frame: too short for a forwarding decision. Hardware
		// discards these at the parser; the ledger attributes them like
		// every other loss (this used to be a silent, uncounted drop).
		s.runtDrops++
		s.ledger.Report(s.dropHop, wire.DropRunt, 1)
		p.f.Release()
		return
	}
	if !eth.Src.IsMulticast() {
		// LAG-aware learning: a station pinned to an ECMP group stays
		// group-learned while its frames keep arriving over that
		// group's members (any member — that is what a bundle is).
		// Arrival anywhere else means the station moved, so relearn to
		// the port as usual.
		if cur, ok := s.fdb[eth.Src]; !ok || cur >= 0 || s.groupOf[p.inPort] != -cur {
			s.fdb[eth.Src] = p.inPort
		}
	}
	if out, ok := s.fdb[eth.Dst]; ok && !eth.Dst.IsMulticast() {
		if out < 0 {
			// Never spray a frame back into the bundle it arrived on —
			// the group is one logical port, so this is a hairpin even
			// when the hash would pick a sibling member.
			if g := -out; s.groupOf[p.inPort] == g {
				s.hairpinDrops++
				s.ledger.Report(s.dropHop, wire.DropHairpin, 1)
				p.f.Release()
				return
			}
			out = s.sprayMember(-out, p.f.Data)
		}
		if out != p.inPort {
			s.dispatch(p, out, p.f)
		} else {
			// Never hairpin out the ingress port.
			s.hairpinDrops++
			s.ledger.Report(s.dropHop, wire.DropHairpin, 1)
			p.f.Release()
		}
		return
	}
	// Unknown unicast, multicast or broadcast: flood to every connected
	// port except the ingress (link-less ports are down). The egress
	// queues take clones, so the ingress frame goes back to its pool.
	s.floods++
	for i, port := range s.ports {
		if i == p.inPort || port.link == nil {
			continue
		}
		if g := s.groupOf[i]; g != 0 {
			// A group is one logical port: flood a single copy via the
			// spray-selected member, and nothing back into a group the
			// ingress port belongs to.
			if s.groupOf[p.inPort] == g || s.sprayMember(g, p.f.Data) != i {
				continue
			}
		}
		s.dispatch(p, i, p.f.Clone())
	}
	p.f.Release()
}

// dispatch hands frame f (owned by the egress from here) to egress port
// out for pending lookup p, applying store-and-forward speed conversion.
// Crossing a rate boundary forces store-and-forward even on a
// cut-through switch: serialising at a faster egress rate than the bits
// arrive would underrun the MAC, and real converting hardware buffers
// the whole frame. The boundary is detected against the frame's *actual*
// ingress occupancy (lastBit − firstBit, which encodes the arrival
// wire's rate), not the ingress port's nominal rate — a topo Convert
// edge can legally deliver a slower wire into a faster port, and that
// boundary must store too. Same-rate forwarding keeps the lookup-derived
// instant untouched, so uniform-rate switches behave exactly as before.
// The boundary flag also classifies any overflow drop: losing frames at
// a conversion point is structural (rate-boundary), not incidental
// fan-in (egress-overflow).
func (s *Switch) dispatch(p pendingLookup, out int, f *wire.Frame) {
	boundary := wire.SerializationTime(f.Size, s.PortRate(out)) != p.span
	earliest := p.readyAt
	if boundary && earliest < p.lastBit {
		earliest = p.lastBit // not fully stored yet: wait for the last bit
	}
	s.ports[out].enqueue(f, earliest, boundary)
}

// Port is one switch interface.
type Port struct {
	sw    *Switch
	index int

	link *wire.Link
	// queue is the egress FIFO; entries are held by value and the backing
	// array is recycled across packets, so steady-state egress queueing
	// allocates nothing.
	queue  ring.FIFO[queued]
	busy   bool
	txEv   *sim.Event // reusable: at most one transmission in flight
	drops  uint64
	egress stats.Counter

	// queueFrames counts frames (not FIFO entries) pending in the egress
	// queue: a train entry carries many, so the cap check needs the frame
	// count. Equal to queue.Len() when no trains are queued.
	queueFrames int

	// Ingress lookup pipeline state: a FIFO of frames whose lookup is in
	// flight, drained by one reusable event (see lookupDone).
	lookupFreeAt sim.Time
	lookupQ      ring.FIFO[pendingLookup]
	lookupEv     *sim.Event
	// lookupFrames counts frames pending in lookupQ (train entries carry
	// many); the LookupQueueCap check is against frames, as on hardware.
	lookupFrames int
}

type queued struct {
	f        *wire.Frame
	train    *wire.Train // non-nil: a coalesced run transmitted in one pass
	earliest sim.Time
}

// Index returns the port number.
func (p *Port) Index() int { return p.index }

// SetLink attaches the egress link.
func (p *Port) SetLink(l *wire.Link) { p.link = l }

// Receive implements wire.Endpoint.
func (p *Port) Receive(f *wire.Frame, firstBit, lastBit sim.Time) {
	p.sw.receive(p, f, firstBit, lastBit)
}

// ReceiveTrain implements wire.TrainEndpoint: a uniform run inside the
// exactness envelope (trainViable) flows through the switch as one
// lookup entry, one decision, and one egress entry; anything else
// unbundles into the per-frame receive path with each frame's exact
// first-bit/last-bit instants.
func (p *Port) ReceiveTrain(t *wire.Train, start, at sim.Time) {
	if p.sw.trainViable(p, t, at) {
		p.sw.receiveTrain(p, t, at)
		return
	}
	fb, lb := start, at
	for i, f := range t.Frames {
		t.Frames[i] = nil
		p.sw.receive(p, f, fb, lb)
		if i+1 < len(t.Frames) {
			fb = lb
			lb = fb.Add(wire.SerializationTime(t.Frames[i+1].Size, t.Rate))
		}
	}
	t.Frames = t.Frames[:0]
	t.Recycle()
}

// Drops returns frames lost to egress queue overflow.
func (p *Port) Drops() uint64 { return p.drops }

// Egress returns counters over frames transmitted out of this port.
func (p *Port) Egress() stats.Counter { return p.egress }

// QueueDepth returns the instantaneous egress queue occupancy.
func (p *Port) QueueDepth() int { return p.queue.Len() }

func (p *Port) enqueue(f *wire.Frame, earliest sim.Time, boundary bool) {
	if p.link == nil {
		panic(fmt.Sprintf("switchsim: egress port %d has no link", p.index))
	}
	if p.queueFrames >= p.sw.cfg.EgressQueueCap {
		p.drops++
		reason := wire.DropEgressOverflow
		if boundary {
			reason = wire.DropRateBoundary
		}
		p.sw.ledger.Report(p.sw.dropHop, reason, 1)
		f.Release()
		return
	}
	p.queue.Push(queued{f: f, earliest: earliest})
	p.queueFrames++
	p.trySend()
}

// trySend starts serialising the head of the egress queue when the MAC
// is free.
//
//lint:hotpath
func (p *Port) trySend() {
	if p.busy || p.queue.Len() == 0 {
		return
	}
	q := p.queue.Pop()
	if q.train != nil {
		p.queueFrames -= q.train.Len()
		p.sendTrain(q.train, q.earliest)
		return
	}
	p.queueFrames--

	p.busy = true
	end := p.link.TransmitAt(q.f, q.earliest)
	if id := p.sw.cfg.HopID; id != 0 {
		q.f.Trace.Stamp(id, end)
	}
	p.egress.Add(wire.WireBytes(q.f.Size))
	p.sw.forwarded.Add(wire.WireBytes(q.f.Size))
	eventAt := end
	if now := p.sw.Engine.Now(); eventAt < now {
		eventAt = now
	}
	if p.txEv == nil {
		//lint:ignore hotpathalloc one-time event creation per port; steady state reschedules
		p.txEv = p.sw.Engine.Schedule(eventAt, p.txDone)
	} else {
		p.sw.Engine.Reschedule(p.txEv, eventAt)
	}
}

// sendTrain transmits a coalesced uniform run back-to-back in one MAC
// pass: one link call, one completion event, bulk counters, and
// arithmetic per-frame hop stamps.
func (p *Port) sendTrain(t *wire.Train, earliest sim.Time) {
	n := t.Len()
	wb := wire.WireBytes(t.Frames[0].Size)
	ser := wire.SerializationTime(t.Frames[0].Size, p.link.Rate)
	p.busy = true
	end := p.link.TransmitTrain(t, earliest)
	if id := p.sw.cfg.HopID; id != 0 && p.link.Peer != nil {
		// The frames now belong to the link's in-flight entry, but this
		// runs synchronously before the delivery event, so stamping their
		// egress instants here matches the per-frame path (which also
		// stamps after handing the frame to the link). Frame k's last bit
		// leaves (n-1-k) slots before the train's end.
		at := end.Add(-sim.Duration(n-1) * ser)
		for _, f := range t.Frames {
			f.Trace.Stamp(id, at)
			at = at.Add(ser)
		}
	}
	for i := 0; i < n; i++ {
		p.egress.Add(wb)
		p.sw.forwarded.Add(wb)
	}
	eventAt := end
	if now := p.sw.Engine.Now(); eventAt < now {
		eventAt = now
	}
	if p.txEv == nil {
		//lint:ignore hotpathalloc one-time event creation per port; steady state reschedules
		p.txEv = p.sw.Engine.Schedule(eventAt, p.txDone)
	} else {
		p.sw.Engine.Reschedule(p.txEv, eventAt)
	}
}

func (p *Port) txDone() {
	p.busy = false
	p.trySend()
}
