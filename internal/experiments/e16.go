package experiments

import (
	"fmt"

	"osnt/internal/gen"
	"osnt/internal/netfpga"
	"osnt/internal/packet"
	"osnt/internal/sim"
	"osnt/internal/stats"
	"osnt/internal/switchsim"
	"osnt/internal/topo"
	"osnt/internal/wire"
)

// E16Loads sweeps the offered load as a fraction of the 40G ingress
// line rate. The chain's conversion knee (40G → 10G inside switch 1)
// sits at 0.25; the starved lookup at switch 3 saturates fractionally
// below the same point, so the sweep turns each loss mechanism on and
// off independently. Heaviest first for the worker pool.
var E16Loads = []float64{1.0, 0.5, 0.3, 0.25, 0.2}

// e16FrameSize is the probe size (FCS-inclusive).
const e16FrameSize = 512

// e16Injections is how many runt frames and how many hairpin probes are
// injected per run, spread evenly across the measurement window.
const e16Injections = 64

// e16HairpinMAC is a station deliberately mis-learned at switch 2: it
// sits behind switch 2's *ingress* port, so every probe addressed to it
// is a hairpin drop at hop 2 and nowhere else.
var e16HairpinMAC = packet.MAC{0x02, 0x05, 0x17, 0x16, 0xaa, 0x01}

// e16HairpinSrcMAC sources the hairpin probes (distinct from the main
// flow so FDB learning stays disjoint).
var e16HairpinSrcMAC = packet.MAC{0x02, 0x05, 0x17, 0x16, 0xaa, 0x02}

// E16LossAttribution is the attribution experiment the unified ledger
// exists for: a CBR stream crosses a 4-deep chain of DUTs engineered so
// that each hop can lose frames for exactly one reason — hop 1 converts
// 40G down to 10G (rate-boundary overflow past the 25% knee) and parses
// out injected runts, hop 2 hairpin-drops probes addressed to a station
// behind its own ingress port, hop 3 runs a lookup pipeline starved to
// ~94% of line rate (lookup-overflow once the converted stream runs
// back-to-back), and hop 4 is clean. The ledger must account every
// frame to the correct (hop, reason) cell with nothing left over:
// offered = delivered-at-MAC + Σ attributed, checked exactly per row.
func E16LossAttribution(duration sim.Duration) *stats.Table {
	if duration == 0 {
		duration = 10 * sim.Millisecond
	}
	tbl := &stats.Table{
		Title:   "E16: per-hop loss attribution — 4-deep converting chain (512B CBR at 40G, knee at 25%)",
		Columns: []string{"load(%)", "offered", "runts", "hairpins", "delivered", "h1-rate-boundary", "h1-runt", "h2-hairpin", "h3-lookup", "other", "conserved"},
	}
	tbl.Rows = sweeper().Rows(len(E16Loads), func(i int) [][]string {
		load := E16Loads[i]
		e := sim.NewEngine()
		t := topo.New().
			Tester("tx", netfpga.Config{Ports: 1, Rate: wire.Rate40G}).
			Tester("rx", netfpga.Config{Ports: 1}).
			DUT("sw1", e15OverspeedLookup(switchsim.Config{
				Ports:     2,
				PortRates: []wire.Rate{wire.Rate40G}, // 40G in, 10G out: the boundary
			})).
			DUT("sw2", switchsim.Config{Ports: 2}).
			DUT("sw3", switchsim.Config{
				Ports: 2,
				// Starved lookup: 455.2 ns service against the 428.8 ns
				// back-to-back arrival slot of a 512 B frame at 10G, so a
				// saturated upstream overflows this hop's lookup queue.
				LookupPerPacket: 20 * sim.Nanosecond,
				LookupPerByte:   sim.Picoseconds(850),
			}).
			DUT("sw4", switchsim.Config{Ports: 2}).
			Link("tx:0", "sw1:0").
			Link("sw1:1", "sw2:0").
			Link("sw2:1", "sw3:0").
			Link("sw3:1", "sw4:0").
			Link("sw4:1", "rx:0").
			MustBuild(e)

		spec := probeSpec
		for k := 1; k <= 4; k++ {
			t.DUT(fmt.Sprintf("sw%d", k)).Learn(spec.DstMAC, 1)
		}
		t.DUT("sw1").Learn(e16HairpinMAC, 1)
		t.DUT("sw2").Learn(e16HairpinMAC, 0) // behind its own ingress: hairpin

		m := t.AttachMonitor("rx:0", idealCapture(nil))

		g, err := gen.New(t.Port("tx:0"), gen.Config{
			Source:  &gen.UDPFlowSource{Spec: spec, FrameSize: e16FrameSize},
			Spacing: gen.CBRForLoad(e16FrameSize, wire.Rate40G, load),
			Pool:    wire.DefaultPool,
		})
		if err != nil {
			panic(err)
		}
		g.Start(0)

		// Inject the engineered losses on a fixed grid across the run:
		// runt frames (too short to parse at hop 1) and hairpin probes
		// (addressed behind hop 2's ingress port).
		hairpinSpec := probeSpec
		hairpinSpec.SrcMAC, hairpinSpec.DstMAC = e16HairpinSrcMAC, e16HairpinMAC
		hairpinSpec.FrameSize = 64
		hairpinData := hairpinSpec.Build()
		// Every injection counts as offered whether or not the TX queue
		// admits it: a refused Enqueue is attributed by the card as
		// tx-overflow, so conservation closes either way.
		txPort := t.Port("tx:0")
		const runts, hairpins = uint64(e16Injections), uint64(e16Injections)
		step := sim.Duration(int64(duration) / e16Injections)
		for k := 0; k < e16Injections; k++ {
			at := sim.After(step * sim.Duration(k))
			e.Schedule(at, func() { txPort.Enqueue(wire.NewFrame(make([]byte, 8))) })
			e.Schedule(at.Add(step/2), func() { txPort.Enqueue(wire.NewFrame(hairpinData)) })
		}

		e.RunUntil(sim.Time(duration))
		g.Stop()
		e.Run() // drain the chain and the capture ring

		offered := g.Sent().Packets + g.Dropped() + runts + hairpins
		ledger := t.Drops()
		lm := stats.NewLossMap(offered, m.Seen().Packets, ledger)
		h1Rate := ledger.Count(t.Hop("sw1"), wire.DropRateBoundary)
		h1Runt := ledger.Count(t.Hop("sw1"), wire.DropRunt)
		h2Hair := ledger.Count(t.Hop("sw2"), wire.DropHairpin)
		h3Look := ledger.Count(t.Hop("sw3"), wire.DropLookupOverflow)
		other := lm.Attributed() - h1Rate - h1Runt - h2Hair - h3Look
		return [][]string{{
			fmt.Sprintf("%.0f", load*100),
			fmt.Sprintf("%d", offered),
			fmt.Sprintf("%d", runts),
			fmt.Sprintf("%d", hairpins),
			fmt.Sprintf("%d", lm.Delivered),
			fmt.Sprintf("%d", h1Rate),
			fmt.Sprintf("%d", h1Runt),
			fmt.Sprintf("%d", h2Hair),
			fmt.Sprintf("%d", h3Look),
			fmt.Sprintf("%d", other),
			fmt.Sprintf("%v", lm.Conserved()),
		}}
	})
	return tbl
}
