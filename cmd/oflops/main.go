// Command oflops runs the OFLOPS-turbo measurement suite against the
// simulated OpenFlow switch (the demo's Part II), printing per-module
// results: flow insertion/modification latency split into control- and
// data-plane components, forwarding consistency, packet-in latency, and
// echo RTT under dataplane load.
//
// Usage:
//
//	oflops                 # full suite with default switch model
//	oflops -rules 256      # batch size for the flow-table modules
//	oflops -hw-lag 3ms     # exaggerate the hardware install lag
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"osnt/internal/oflops"
	"osnt/internal/ofswitch"
	"osnt/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oflops: ")

	rules := flag.Int("rules", 128, "flow-table batch size")
	hwLag := flag.Duration("hw-lag", 1500*time.Microsecond, "hardware install lag")
	tax := flag.Duration("cpu-tax", 150*time.Nanosecond, "management CPU cost per forwarded packet")
	flag.Parse()

	swCfg := ofswitch.Config{
		HWInstallDelay:  sim.DurationOf(*hwLag),
		DataplaneCPUTax: sim.DurationOf(*tax),
	}

	fmt.Println("== OFLOPS-turbo measurement suite (simulated OpenFlow switch) ==")

	{
		r := oflops.NewRunner(oflops.Config{Switch: swCfg})
		m := &oflops.FlowInsertLatency{Rules: *rules}
		if err := r.Run(m); err != nil {
			log.Fatal(err)
		}
		h, seen := m.DataLatencies()
		fmt.Printf("\n[%s]\n", m.Name())
		fmt.Printf("  control plane (barrier ack): %v\n", m.ControlLatency())
		fmt.Printf("  data plane (first packet):   %s\n", h.Summary(1e9, "ms"))
		fmt.Printf("  rules confirmed:             %d/%d\n", seen, *rules)
	}

	{
		r := oflops.NewRunner(oflops.Config{Switch: swCfg})
		m := &oflops.FlowModifyLatency{Rules: *rules}
		if err := r.Run(m); err != nil {
			log.Fatal(err)
		}
		h, seen := m.DataLatencies()
		fmt.Printf("\n[%s]\n", m.Name())
		fmt.Printf("  control plane (barrier ack): %v\n", m.ControlLatency())
		fmt.Printf("  data plane (rule flipped):   %s\n", h.Summary(1e9, "ms"))
		fmt.Printf("  rules confirmed:             %d/%d\n", seen, *rules)
	}

	{
		r := oflops.NewRunner(oflops.Config{Switch: swCfg})
		m := &oflops.ForwardingConsistency{Rules: *rules}
		if err := r.Run(m); err != nil {
			log.Fatal(err)
		}
		res := m.Result()
		fmt.Printf("\n[%s]\n", m.Name())
		fmt.Printf("  control plane (barrier ack): %v\n", res.ControlLatency)
		fmt.Printf("  old-rule packets after ack:  %d\n", res.OldAfterBarrier)
		fmt.Printf("  mixed-state window:          %v\n", res.TransitionWindow)
		fmt.Printf("  old/new marked packets:      %d/%d\n", res.OldTotal, res.NewTotal)
	}

	{
		r := oflops.NewRunner(oflops.Config{Switch: swCfg})
		m := &oflops.PacketInLatency{Count: 50}
		if err := r.Run(m); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n[%s]\n", m.Name())
		fmt.Printf("  packet-in latency: %s\n", m.Latencies().Summary(1e6, "µs"))
	}

	for _, load := range []float64{0, 0.5, 0.9} {
		r := oflops.NewRunner(oflops.Config{Switch: swCfg})
		m := &oflops.EchoUnderLoad{Load: load, Echoes: 15}
		if err := r.Run(m); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n[%s]\n", m.Name())
		fmt.Printf("  echo RTT: %s\n", m.RTTs().Summary(1e6, "µs"))
	}
}
