package analysis_test

import (
	"testing"

	"osnt/internal/analysis"
	"osnt/internal/analysis/analysistest"
)

func TestFrameLeaseCorpus(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.FrameLease, "framelease")
}
