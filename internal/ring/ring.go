// Package ring provides the head-indexed FIFO used on the per-packet hot
// paths (link deliveries, switch lookup/egress queues, MAC TX queues):
// Push appends, Pop advances a head index, and the dead prefix is
// compacted only when it dominates the backing array. Steady-state
// queueing therefore costs O(1) per element with no allocation and no
// per-element copy-down, which is what keeps the gen→port→link→mon path
// at 0.0 allocs/packet.
package ring

// FIFO is a head-indexed queue of T. The zero value is an empty queue.
type FIFO[T any] struct {
	buf  []T
	head int
}

// Len returns the number of queued elements.
func (r *FIFO[T]) Len() int { return len(r.buf) - r.head }

// Push appends v to the tail.
func (r *FIFO[T]) Push(v T) { r.buf = append(r.buf, v) }

// Peek returns a pointer to the head element without removing it. It
// must not be called on an empty FIFO, and the pointer is invalidated by
// the next Push or Pop.
func (r *FIFO[T]) Peek() *T { return &r.buf[r.head] }

// Pop removes and returns the head element, zeroing its slot so the
// backing array never retains stale references. Popping the last element
// rewinds to a full empty buffer; otherwise the dead prefix is compacted
// once it is both non-trivial (≥64 slots) and at least half the array.
// It must not be called on an empty FIFO.
func (r *FIFO[T]) Pop() T {
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head++
	r.maybeCompact()
	return v
}

// PushN appends every element of vs to the tail in one grow-check: the
// bulk-enqueue path batch producers (frame trains) use instead of N
// single Pushes.
func (r *FIFO[T]) PushN(vs []T) { r.buf = append(r.buf, vs...) }

// PopN removes the first n elements, copying them into dst (which must
// have room for n), and runs the dead-prefix accounting once instead of
// once per element. It must not be called with n exceeding Len.
func (r *FIFO[T]) PopN(dst []T, n int) {
	if n == 0 {
		return
	}
	var zero T
	copy(dst[:n], r.buf[r.head:r.head+n])
	for i := 0; i < n; i++ {
		r.buf[r.head+i] = zero
	}
	r.head += n
	r.maybeCompact()
}

// maybeCompact is Pop's tail bookkeeping: rewind when empty, compact when
// the dead prefix dominates.
func (r *FIFO[T]) maybeCompact() {
	if r.head == len(r.buf) {
		r.buf = r.buf[:0]
		r.head = 0
	} else if r.head >= 64 && r.head*2 >= len(r.buf) {
		var zero T
		n := copy(r.buf, r.buf[r.head:])
		for i := n; i < len(r.buf); i++ {
			r.buf[i] = zero
		}
		r.buf = r.buf[:n]
		r.head = 0
	}
}
